#include "core/acquire.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "common/stopwatch.h"

namespace acquire {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

RefinedQuery MakeGridAnswer(const RefinedSpace& space, const GridCoord& coord,
                            double aggregate, double error) {
  RefinedQuery q;
  q.coord = coord;
  q.pscores = space.CoordPScores(coord);
  q.qscore = space.QScoreOf(coord);
  q.aggregate = aggregate;
  q.error = error;
  q.description = space.Describe(coord);
  return q;
}

RefinedQuery MakeOffGridAnswer(const RefinedSpace& space,
                               const std::vector<double>& pscores,
                               double aggregate, double error) {
  RefinedQuery q;
  q.pscores = pscores;
  q.qscore = space.QScoreOfPScores(pscores);
  q.aggregate = aggregate;
  q.error = error;
  q.description = space.DescribePScores(pscores);
  return q;
}

// Repartitioning of an overshooting cell (Section 6): the previous grid
// layer undershot and this one jumped past an equality target, so the
// answer lies inside the cell. Diagonal bisection between the cell's lower
// and upper corners, `b` full-query probes.
Result<std::optional<RefinedQuery>> RepartitionCell(
    const RefinedSpace& space, EvaluationLayer* layer, const GridCoord& coord,
    const ErrorFn& error_fn, const AcquireOptions& options) {
  const size_t d = coord.size();
  std::vector<double> lo(d), hi(d);
  for (size_t i = 0; i < d; ++i) {
    hi[i] = static_cast<double>(coord[i]) * space.step();
    lo[i] = coord[i] > 0 ? hi[i] - space.step() : 0.0;
  }
  const Constraint& constraint = space.task().constraint;
  std::optional<RefinedQuery> best;
  std::vector<double> mid(d);
  for (int iter = 0; iter < options.repartition_iters; ++iter) {
    for (size_t i = 0; i < d; ++i) mid[i] = 0.5 * (lo[i] + hi[i]);
    ACQ_ASSIGN_OR_RETURN(double value, layer->EvaluateQueryValue(mid));
    double err = error_fn(constraint, value);
    if (!best.has_value() || err < best->error) {
      best = MakeOffGridAnswer(space, mid, value, err);
    }
    if (err <= options.delta) break;
    if (value < constraint.target) {
      lo = mid;  // undershoots: move toward the cell's upper corner
    } else {
      hi = mid;
    }
  }
  if (best.has_value() && best->error <= options.delta) return best;
  return std::optional<RefinedQuery>();
}

std::unique_ptr<QueryGenerator> MakeGenerator(const RefinedSpace& space,
                                              const AcquireOptions& options,
                                              MemoryBudget* budget) {
  SearchOrder order = options.order;
  if (order == SearchOrder::kAuto) {
    order = options.norm.kind() == NormKind::kLInf ? SearchOrder::kShell
                                                   : SearchOrder::kBfs;
  }
  switch (order) {
    case SearchOrder::kShell:
      // O(d) state — nothing worth metering.
      return std::make_unique<ShellGenerator>(&space);
    case SearchOrder::kBestFirst:
      return std::make_unique<BestFirstGenerator>(&space, budget);
    case SearchOrder::kAuto:
    case SearchOrder::kBfs:
      break;
  }
  return std::make_unique<BfsGenerator>(&space, budget);
}

}  // namespace

Result<AcquireResult> RunAcquire(const AcqTask& task, EvaluationLayer* layer,
                                 const AcquireOptions& options) {
  if (task.d() == 0) {
    return Status::InvalidArgument("task has no refinable predicates");
  }
  if (layer == nullptr || &layer->task() != &task) {
    return Status::InvalidArgument(
        "evaluation layer must wrap the same AcqTask");
  }
  if (options.gamma <= 0.0) {
    return Status::InvalidArgument("gamma must be positive");
  }
  if (options.delta < 0.0) {
    return Status::InvalidArgument("delta must be non-negative");
  }

  const ErrorFn error_fn =
      options.error_fn ? options.error_fn : ErrorFn(DefaultAggregateError);
  RefinedSpace space(&task, options.gamma, options.norm);

  // Resolve the interruption context BEFORE Prepare: the evaluation layer
  // charges its materialization (and any charges deferred from a lazy
  // Prepare the processor triggered earlier) against the run's budget, so
  // the budget must be attached first. A memory budget needs a context to
  // latch exhaustion into, so budget-only runs get a local one.
  RunContext local_ctx;
  RunContext* ctx = options.run_ctx;
  if (ctx == nullptr && options.memory_budget_bytes > 0) ctx = &local_ctx;
  if (ctx != nullptr && options.memory_budget_bytes > 0 &&
      ctx->budget().limit() == 0) {
    ctx->budget().set_limit(options.memory_budget_bytes);
  }
  MemoryBudget* budget = ctx != nullptr ? &ctx->budget() : nullptr;
  if (budget != nullptr) layer->set_memory_budget(budget);

  ACQ_RETURN_IF_ERROR(layer->Prepare());
  layer->ResetStats();
  Stopwatch sw;  // after Prepare: elapsed_ms times the search itself

  std::unique_ptr<QueryGenerator> generator =
      MakeGenerator(space, options, budget);
  // Per-layer divergence detection only makes sense when the generator
  // emits discrete layers; best-first scores are (nearly) unique per coord.
  SearchOrder effective_order = options.order;
  if (effective_order == SearchOrder::kAuto) {
    effective_order = options.norm.kind() == NormKind::kLInf
                          ? SearchOrder::kShell
                          : SearchOrder::kBfs;
  }
  const bool discrete_layers = effective_order != SearchOrder::kBestFirst;
  // Every order batches by default now: BFS and shell emit discrete layers,
  // and best-first micro-batches equal-score frontier runs (often single
  // coordinates, which the batched driver handles at no extra cost).
  const bool batched = options.batch_explore != BatchExplore::kOff;
  AcquireResult result;

  // Algorithm 4's minRefLayer, in generator-score units. Once a hit occurs,
  // the rest of its layer is examined and the search stops — or, with
  // collect_within_gamma, continues for another gamma's worth of layers.
  double stop_score = kInf;
  // The extra score budget gamma buys: for BFS/shell each layer adds one
  // grid step to the L1 refinement, so gamma ~= d layers; for best-first the
  // score *is* the QScore.
  const double gamma_bonus =
      options.order == SearchOrder::kBestFirst
          ? options.gamma
          : options.gamma / space.step();

  // Divergence detection across completed layers (see AcquireOptions).
  double last_score = 0.0;
  double layer_min_error = kInf;
  double prev_layer_min_error = kInf;
  int worse_layers = 0;

  // Best-so-far (materialized lazily at the end).
  GridCoord best_coord;
  double best_error = kInf;
  double best_aggregate = 0.0;
  bool best_is_offgrid = false;
  RefinedQuery best_offgrid;
  uint64_t stall = 0;  // queries since the best error last improved

  // Per-phase driver timings (ExecStats doc): generator, sub-query
  // execution, Eq. 17 merges + per-coordinate bookkeeping (batched only).
  double expand_ms = 0.0;
  double explore_ms = 0.0;
  double merge_ms = 0.0;
  uint64_t total_cell_queries = 0;

  // How each batched layer's Eq. 17 merges were published (parallel_merge).
  MergeStats merge_stats;
  uint64_t merge_layers_sequential = 0;

  // Layer-boundary bookkeeping (divergence detection across completed
  // layers; see AcquireOptions). False stops the search.
  auto close_layer = [&](double score) {
    if (stop_score == kInf) {
      if (layer_min_error > prev_layer_min_error) {
        ++worse_layers;
      } else if (layer_min_error < prev_layer_min_error) {
        worse_layers = 0;
      }
      if (worse_layers >= options.divergence_patience) return false;
    }
    prev_layer_min_error = layer_min_error;
    layer_min_error = kInf;
    last_score = score;
    return true;
  };

  // The per-coordinate body shared by the sequential and batched drivers:
  // record the aggregate of `coord`, repartition on an overshoot, apply the
  // stall/max_explored stopping rules. False stops the search.
  auto investigate = [&](const GridCoord& coord, double score,
                         double aggregate) -> Result<bool> {
    ++result.queries_explored;
    if (ctx != nullptr) {
      ctx->queries_explored.store(result.queries_explored,
                                  std::memory_order_relaxed);
    }
    const double err = error_fn(task.constraint, aggregate);
    layer_min_error = std::min(layer_min_error, err);

    if (err < best_error) {
      best_error = err;
      best_coord = coord;
      best_aggregate = aggregate;
      best_is_offgrid = false;
      stall = 0;
    } else if (++stall > options.stall_limit && stop_score == kInf) {
      return false;
    }

    if (err <= options.delta) {
      result.queries.push_back(MakeGridAnswer(space, coord, aggregate, err));
      if (stop_score == kInf) {
        stop_score =
            options.collect_within_gamma ? score + gamma_bonus : score;
      }
    } else if (options.repartition_iters > 0 &&
               OvershootsBeyondDelta(task.constraint, aggregate,
                                     options.delta)) {
      ACQ_ASSIGN_OR_RETURN(
          std::optional<RefinedQuery> repartitioned,
          RepartitionCell(space, layer, coord, error_fn, options));
      if (repartitioned.has_value()) {
        if (repartitioned->error < best_error) {
          best_error = repartitioned->error;
          best_offgrid = *repartitioned;
          best_is_offgrid = true;
        }
        result.queries.push_back(*std::move(repartitioned));
        if (stop_score == kInf) {
          stop_score =
              options.collect_within_gamma ? score + gamma_bonus : score;
        }
      }
    }

    if (result.queries_explored >= options.max_explored) {
      // Budget exhausted, not a verdict about the space: report distinctly
      // so callers can tell "no answer found" from "ran out of budget".
      result.termination = RunTermination::kTruncated;
      return false;
    }
    return true;
  };

  // Cooperative interruption poll shared by both drivers. True stops the
  // search, recording why; the partial best-so-far is still returned.
  auto interrupted = [&]() {
    if (ctx == nullptr || !ctx->ShouldStop()) return false;
    result.termination = ctx->Interruption();
    return result.termination != RunTermination::kCompleted;
  };

  // Layer-drain progress hook (RunContext::LayerDrained): counts the layer
  // and, when a throttled ProgressSink is armed, completes the snapshot with
  // the best-so-far and the evaluation layer's counters. The fill lambda
  // only runs for frames that actually emit, so the Describe() rendering
  // costs nothing on throttle-coalesced drains.
  auto layer_drained = [&]() {
    if (ctx == nullptr) return;
    ctx->LayerDrained([&](ProgressSnapshot* snap) {
      snap->elapsed_ms = sw.ElapsedMillis();
      if (best_is_offgrid) {
        snap->has_best = true;
        snap->best_error = best_offgrid.error;
        snap->best_qscore = best_offgrid.qscore;
        snap->best_aggregate = best_offgrid.aggregate;
        snap->best_description = best_offgrid.description;
      } else if (!best_coord.empty() || result.queries_explored > 0) {
        const GridCoord bc =
            best_coord.empty() ? GridCoord(task.d(), 0) : best_coord;
        snap->has_best = true;
        snap->best_error = best_error;
        snap->best_qscore = space.QScoreOf(bc);
        snap->best_aggregate = best_aggregate;
        snap->best_description = space.Describe(bc);
      }
      const EvaluationLayer::ExecStats stats = layer->stats();
      snap->eval_queries = stats.queries;
      snap->tuples_scanned = stats.tuples_scanned;
      snap->prepare_ms = stats.prepare_ms;
      snap->delta_rows = stats.delta_rows;
      snap->delta_merges = stats.delta_merges;
      snap->merge_layers_central = merge_stats.central_layers;
      snap->merge_layers_tree = merge_stats.tree_layers;
      snap->merge_layers_radix = merge_stats.radix_layers;
      snap->merge_layers_sequential = merge_layers_sequential;
    });
  };

  // Prepare alone can exhaust a tight budget (the materialized matrix is
  // charged there). Still answer the origin — the original query, one box —
  // so the caller gets a meaningful best-so-far instead of an empty report,
  // then stop with the budget verdict.
  const bool pre_exhausted = budget != nullptr && budget->exhausted();
  if (pre_exhausted) {
    const GridCoord origin(task.d(), 0);
    ACQ_ASSIGN_OR_RETURN(AggregateOps::State state,
                         layer->EvaluateBox(space.QueryBox(origin)));
    ACQ_ASSIGN_OR_RETURN(const bool keep_unused,
                         investigate(origin, 0.0, task.agg.ops->Final(state)));
    (void)keep_unused;
    result.termination = ctx->Interruption();
  } else if (!batched) {
    Explorer explorer(&space, layer, budget);
    GridCoord coord;
    // Progress tracks score boundaries separately from the divergence
    // bookkeeping's last_score: best-first (non-discrete) runs never call
    // close_layer, but their score changes are still drain points.
    double progress_score = 0.0;
    for (;;) {
      if (interrupted()) break;
      Stopwatch t_next;
      const bool have = generator->Next(&coord);
      expand_ms += t_next.ElapsedMillis();
      if (!have) break;
      const double score = generator->CurrentScore();
      if (score > stop_score) break;
      if (score != progress_score) {
        if (result.queries_explored > 0) layer_drained();
        progress_score = score;
      }
      if (discrete_layers && score != last_score && !close_layer(score)) {
        break;
      }

      Stopwatch t_explore;
      double aggregate;
      if (options.use_incremental) {
        ACQ_ASSIGN_OR_RETURN(aggregate, explorer.ComputeAggregate(coord));
      } else {
        // Ablation: full re-execution of the refined query.
        ACQ_ASSIGN_OR_RETURN(AggregateOps::State state,
                             layer->EvaluateBox(space.QueryBox(coord)));
        aggregate = task.agg.ops->Final(state);
      }
      ACQ_ASSIGN_OR_RETURN(const bool keep,
                           investigate(coord, score, aggregate));
      explore_ms += t_explore.ElapsedMillis();
      if (ctx != nullptr) {
        ctx->cell_queries.store(explorer.cell_queries(),
                                std::memory_order_relaxed);
      }
      if (!keep) break;
    }
    total_cell_queries = explorer.cell_queries();
  } else {
    BatchExplorer batch(&space, layer, generator.get(), ctx);
    // Shell order's whole shell drains as one layer with intra-layer
    // predecessors, so it keeps the cursor-based sequential merge; the
    // other orders hand in-sync layers to the parallel merger.
    batch.set_shell_drain_hint(effective_order == SearchOrder::kShell);
    ParallelLayerMerger merger;
    const bool try_parallel_merge =
        options.use_incremental && effective_order != SearchOrder::kShell &&
        options.merge_strategy != MergeStrategy::kSequential;
    std::vector<AggregateOps::State> layer_states;  // non-incremental mode
    bool running = true;
    while (running && !interrupted() && batch.NextLayer()) {
      const double score = batch.layer_score();
      if (score > stop_score) break;
      if (discrete_layers && score != last_score && !close_layer(score)) {
        break;
      }

      // Execute the whole layer's sub-queries up front (one parallel or
      // natively merged batch), then drain in generation order.
      if (options.use_incremental) {
        ACQ_RETURN_IF_ERROR(batch.ExecuteLayer());
      } else {
        Stopwatch t_batch;
        std::vector<std::vector<PScoreRange>> boxes;
        boxes.reserve(batch.layer().size());
        for (const GridCoord& c : batch.layer()) {
          boxes.push_back(space.QueryBox(c));
        }
        ACQ_ASSIGN_OR_RETURN(layer_states, layer->EvaluateBoxes(boxes));
        explore_ms += t_batch.ElapsedMillis();
      }

      Stopwatch t_merge;
      if (options.use_incremental) {
        // Two-phase parallel merge of the whole layer when it qualifies;
        // the per-coordinate ComputeAggregate below then reduces to store
        // lookups. A false return leaves the store and seeds untouched, so
        // the sequential per-coordinate path is the unchanged reference.
        const bool merged_parallel =
            try_parallel_merge && batch.last_layer_in_sync() &&
            merger.MergeLayer(&batch.explorer(), batch.layer(),
                              options.merge_strategy, budget);
        if (!merged_parallel) ++merge_layers_sequential;
      }
      for (size_t q = 0; q < batch.layer().size(); ++q) {
        const GridCoord& coord = batch.layer()[q];
        double aggregate;
        if (options.use_incremental) {
          ACQ_ASSIGN_OR_RETURN(aggregate,
                               batch.explorer().ComputeAggregate(coord));
        } else {
          aggregate = task.agg.ops->Final(layer_states[q]);
        }
        ACQ_ASSIGN_OR_RETURN(const bool keep,
                             investigate(coord, score, aggregate));
        if (!keep) {
          running = false;
          break;
        }
      }
      merge_ms += t_merge.ElapsedMillis();
      if (ctx != nullptr) {
        ctx->cell_queries.store(batch.explorer().cell_queries(),
                                std::memory_order_relaxed);
      }
      if (running) {
        // This equi-score layer is fully investigated: a drain point. The
        // merge publication counters are refreshed first so the frame's
        // snapshot reflects the layer that just drained.
        merge_stats = merger.stats();
        layer_drained();
      }
    }
    total_cell_queries = batch.explorer().cell_queries();
    expand_ms += batch.expand_ms();
    explore_ms += batch.batch_ms();
    merge_stats = merger.stats();
  }

  result.satisfied = !result.queries.empty();
  if (best_is_offgrid) {
    result.best = best_offgrid;
  } else if (!best_coord.empty() || result.queries_explored > 0) {
    result.best =
        MakeGridAnswer(space, best_coord.empty() ? GridCoord(task.d(), 0)
                                                 : best_coord,
                       best_aggregate, best_error);
  }
  std::sort(result.queries.begin(), result.queries.end(),
            [](const RefinedQuery& a, const RefinedQuery& b) {
              return a.qscore < b.qscore;
            });
  result.cell_queries = total_cell_queries;
  result.exec_stats = layer->stats();
  result.exec_stats.expand_ms = expand_ms;
  result.exec_stats.explore_ms = explore_ms;
  result.exec_stats.merge_ms = merge_ms;
  result.exec_stats.merge_layers_central = merge_stats.central_layers;
  result.exec_stats.merge_layers_tree = merge_stats.tree_layers;
  result.exec_stats.merge_layers_radix = merge_stats.radix_layers;
  result.exec_stats.merge_layers_sequential = merge_layers_sequential;
  result.elapsed_ms = sw.ElapsedMillis();
  return result;
}

}  // namespace acquire
