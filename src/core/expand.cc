#include "core/expand.h"

#include <algorithm>

#include "common/failpoint.h"

namespace acquire {

namespace {
// Saturated number of cells in the whole grid: prod_i (MaxLevel(i) + 1).
size_t TotalCells(const RefinedSpace& space, size_t cap) {
  size_t total = 1;
  for (size_t i = 0; i < space.d(); ++i) {
    const size_t levels = static_cast<size_t>(space.MaxLevel(i)) + 1;
    if (total >= cap / levels) return cap;
    total *= levels;
  }
  return total;
}

// Upper bound on the cardinality of BFS layer k (coordinate sum == k) in d
// dimensions, ignoring the per-axis caps: C(k + d - 1, d - 1), saturated.
size_t LayerCardinalityBound(int64_t k, size_t d, size_t cap) {
  double c = 1.0;
  for (size_t i = 1; i < d; ++i) {
    c *= static_cast<double>(k + static_cast<int64_t>(i)) /
         static_cast<double>(i);
    if (c >= static_cast<double>(cap)) return cap;
  }
  return static_cast<size_t>(c);
}

}  // namespace

BfsGenerator::BfsGenerator(const RefinedSpace* space, MemoryBudget* budget)
    : space_(space), budget_(budget) {
  total_cells_ = TotalCells(*space_, size_t{1} << 26);
  layer_.assign(space_->d(), 0);  // the origin
  next_.reserve(space_->d() * space_->d());
  ChargeGrowth();
}

void BfsGenerator::ChargeGrowth() {
  const size_t bytes =
      (layer_.capacity() + next_.capacity()) * sizeof(int32_t);
  if (bytes <= charged_bytes_) return;
  const size_t delta = bytes - charged_bytes_;
  charged_bytes_ = bytes;
  if (budget_ == nullptr) return;
  budget_->Charge(delta);
  if (ACQ_FAILPOINT("expand.layer_alloc")) budget_->MarkExhausted();
}

bool BfsGenerator::Next(GridCoord* out) {
  const size_t d = space_->d();
  if (pos_ * d == layer_.size()) {
    if (next_.empty()) return false;
    layer_.swap(next_);
    next_.clear();
    pos_ = 0;
    score_ += 1.0;
    // Coordinates appended while visiting layer k belong to layer k + 1.
    next_.reserve(d * std::min(
        LayerCardinalityBound(static_cast<int64_t>(score_) + 1, d,
                              total_cells_),
        total_cells_));
    ChargeGrowth();
  }
  const int32_t* cur = layer_.data() + pos_ * d;
  // Canonical-predecessor expansion: only increment dimensions at or after
  // the last nonzero one, so each successor is generated exactly once (see
  // the class comment) and no visited set is needed.
  size_t first = 0;
  for (size_t i = d; i-- > 0;) {
    if (cur[i] > 0) {
      first = i;
      break;
    }
  }
  for (size_t i = first; i < d; ++i) {
    if (cur[i] >= space_->MaxLevel(i)) continue;
    next_.insert(next_.end(), cur, cur + d);
    ++next_[next_.size() - d + i];
  }
  ChargeGrowth();  // reserve underestimates occasionally force a regrow
  ++pos_;
  out->assign(cur, cur + d);
  return true;
}

ShellGenerator::ShellGenerator(const RefinedSpace* space) : space_(space) {
  current_.resize(space_->d(), 0);
  for (size_t i = 0; i < space_->d(); ++i) {
    max_shell_ = std::max(max_shell_, space_->MaxLevel(i));
  }
}

bool ShellGenerator::Next(GridCoord* out) {
  const size_t d = space_->d();
  if (k_ == 0) {
    if (!shell0_done_) {
      shell0_done_ = true;
      *out = GridCoord(d, 0);
      return true;
    }
    k_ = 1;
    pinned_ = d;  // before the first (highest-pin) group
    odometer_live_ = false;
  }

  while (k_ <= max_shell_) {
    if (!odometer_live_) {
      // Find the next dimension that can be pinned at k, in DESCENDING
      // order (see the class comment: this makes the shell topological for
      // the Explore phase's predecessor cursors).
      bool found = false;
      while (pinned_ > 0) {
        --pinned_;
        if (space_->MaxLevel(pinned_) >= k_) {
          found = true;
          break;
        }
      }
      if (!found) {
        ++k_;
        pinned_ = d;
        continue;
      }
      for (size_t j = 0; j < d; ++j) current_[j] = 0;
      current_[pinned_] = k_;
      odometer_live_ = true;
      *out = current_;
      return true;
    }
    // Advance the odometer over the free dimensions (last varies fastest).
    bool advanced = false;
    for (size_t rj = d; rj-- > 0;) {
      if (rj == pinned_) continue;
      // Dimensions before the pinned one stay below k so each coordinate is
      // enumerated exactly once (under its first k-valued dimension).
      int32_t limit = std::min(rj < pinned_ ? k_ - 1 : k_,
                               space_->MaxLevel(rj));
      if (current_[rj] < limit) {
        ++current_[rj];
        for (size_t m = rj + 1; m < d; ++m) {
          if (m != pinned_) current_[m] = 0;
        }
        advanced = true;
        break;
      }
    }
    if (advanced) {
      *out = current_;
      return true;
    }
    // Group exhausted; the loop top moves to the next lower pin.
    odometer_live_ = false;
  }
  return false;
}

BestFirstGenerator::BestFirstGenerator(const RefinedSpace* space,
                                       MemoryBudget* budget)
    : space_(space), budget_(budget) {
  seen_.reserve(std::min(TotalCells(*space_, size_t{1} << 26), size_t{4096}));
  GridCoord origin(space_->d(), 0);
  seen_.insert(origin);
  heap_.push(Entry{0.0, std::move(origin)});
}

bool BestFirstGenerator::Next(GridCoord* out) {
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  for (size_t i = 0; i < top.coord.size(); ++i) {
    if (top.coord[i] >= space_->MaxLevel(i)) continue;
    GridCoord next = top.coord;
    ++next[i];
    if (seen_.insert(next).second) {
      double q = space_->QScoreOf(next);
      heap_.push(Entry{q, std::move(next)});
    }
  }
  if (budget_ != nullptr && seen_.size() > charged_coords_) {
    // Each frontier coordinate lives once in seen_ and (while queued) once
    // in the heap: roughly two d-length int32 vectors plus bucket overhead.
    const size_t per_coord =
        2 * (sizeof(GridCoord) + top.coord.size() * sizeof(int32_t)) +
        2 * sizeof(void*);
    budget_->Charge((seen_.size() - charged_coords_) * per_coord);
    charged_coords_ = seen_.size();
    if (ACQ_FAILPOINT("expand.layer_alloc")) budget_->MarkExhausted();
  }
  score_ = top.qscore;
  *out = std::move(top.coord);
  return true;
}

}  // namespace acquire
