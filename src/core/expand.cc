#include "core/expand.h"

#include <algorithm>
#include <numeric>

namespace acquire {

namespace {
double CoordSum(const GridCoord& c) {
  return std::accumulate(c.begin(), c.end(), 0.0);
}
}  // namespace

BfsGenerator::BfsGenerator(const RefinedSpace* space) : space_(space) {
  GridCoord origin(space_->d(), 0);
  seen_.insert(origin);
  queue_.push_back(std::move(origin));
}

bool BfsGenerator::Next(GridCoord* out) {
  if (queue_.empty()) return false;
  GridCoord cur = std::move(queue_.front());
  queue_.pop_front();
  for (size_t i = 0; i < cur.size(); ++i) {
    if (cur[i] >= space_->MaxLevel(i)) continue;
    GridCoord next = cur;
    ++next[i];
    if (seen_.insert(next).second) queue_.push_back(std::move(next));
  }
  score_ = CoordSum(cur);
  *out = std::move(cur);
  return true;
}

ShellGenerator::ShellGenerator(const RefinedSpace* space) : space_(space) {
  current_.resize(space_->d(), 0);
  for (size_t i = 0; i < space_->d(); ++i) {
    max_shell_ = std::max(max_shell_, space_->MaxLevel(i));
  }
}

bool ShellGenerator::Next(GridCoord* out) {
  const size_t d = space_->d();
  if (k_ == 0) {
    if (!shell0_done_) {
      shell0_done_ = true;
      *out = GridCoord(d, 0);
      return true;
    }
    k_ = 1;
    pinned_ = 0;
    odometer_live_ = false;
  }

  while (k_ <= max_shell_) {
    if (!odometer_live_) {
      // Find the next dimension that can be pinned at k.
      while (pinned_ < d && space_->MaxLevel(pinned_) < k_) ++pinned_;
      if (pinned_ >= d) {
        ++k_;
        pinned_ = 0;
        continue;
      }
      for (size_t j = 0; j < d; ++j) current_[j] = 0;
      current_[pinned_] = k_;
      odometer_live_ = true;
      *out = current_;
      return true;
    }
    // Advance the odometer over the free dimensions (last varies fastest).
    bool advanced = false;
    for (size_t rj = d; rj-- > 0;) {
      if (rj == pinned_) continue;
      // Dimensions before the pinned one stay below k so each coordinate is
      // enumerated exactly once (under its first k-valued dimension).
      int32_t limit = std::min(rj < pinned_ ? k_ - 1 : k_,
                               space_->MaxLevel(rj));
      if (current_[rj] < limit) {
        ++current_[rj];
        for (size_t m = rj + 1; m < d; ++m) {
          if (m != pinned_) current_[m] = 0;
        }
        advanced = true;
        break;
      }
    }
    if (advanced) {
      *out = current_;
      return true;
    }
    odometer_live_ = false;
    ++pinned_;
  }
  return false;
}

BestFirstGenerator::BestFirstGenerator(const RefinedSpace* space)
    : space_(space) {
  GridCoord origin(space_->d(), 0);
  seen_.insert(origin);
  heap_.push(Entry{0.0, std::move(origin)});
}

bool BestFirstGenerator::Next(GridCoord* out) {
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  for (size_t i = 0; i < top.coord.size(); ++i) {
    if (top.coord[i] >= space_->MaxLevel(i)) continue;
    GridCoord next = top.coord;
    ++next[i];
    if (seen_.insert(next).second) {
      double q = space_->QScoreOf(next);
      heap_.push(Entry{q, std::move(next)});
    }
  }
  score_ = top.qscore;
  *out = std::move(top.coord);
  return true;
}

}  // namespace acquire
