#ifndef ACQUIRE_CORE_PARALLEL_MERGE_H_
#define ACQUIRE_CORE_PARALLEL_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "core/explore.h"
#include "exec/thread_pool.h"

namespace acquire {

/// How one layer's Eq. 17 merges are published into the AggregateStore.
/// Every strategy produces a store that is bit-identical (entry order, key
/// order, block contents) to the sequential reference — the strategies only
/// trade off how the publication work is spread across the pool — so the
/// choice never affects results and is deliberately absent from the task
/// fingerprint.
enum class MergeStrategy {
  /// Per layer: sequential below ~2k cells, central for small fan-outs,
  /// radix for large layers on 4+ workers, tree otherwise (see
  /// ParallelLayerMerger for the exact rule).
  kAuto,
  /// Always the sequential reference path (per-coordinate Algorithm 3).
  kSequential,
  /// Partials build in parallel; a single consumer drains them into the
  /// store and publishes every hash slot itself.
  kCentral,
  /// Partials concatenate pairwise in log-depth rounds on the pool before
  /// one bulk copy; slot publication stays single-threaded.
  kTree,
  /// Workers copy their own partials and claim hash slots lock-free within
  /// disjoint slot-table partitions (CAS handles probe chains that spill
  /// across a partition boundary).
  kRadix,
};

const char* MergeStrategyName(MergeStrategy strategy);
/// Parses "auto|sequential|central|tree|radix" (case-insensitive).
bool ParseMergeStrategy(const std::string& name, MergeStrategy* out);

/// Per-run tallies of how layers were published, surfaced through
/// ExecStats / server STATS.
struct MergeStats {
  uint64_t central_layers = 0;
  uint64_t tree_layers = 0;
  uint64_t radix_layers = 0;
};

/// Two-phase parallel layer merge (after Shatdal's adaptive two-phase
/// aggregation): phase A partitions the layer's coordinates into contiguous
/// chunks across the pool, each worker running the Eq. 17 recurrence for
/// its chunk into a thread-local partial arena (the predecessors all live
/// in the immutable prefix of the store, so workers only read shared
/// state); phase B publishes the partials into the store with the selected
/// strategy. Entries are appended in generation order whatever the
/// strategy, so keys, blocks and entry indices — and therefore every later
/// lookup — are bit-identical to the sequential reference.
///
/// Preconditions for a parallel merge (checked, not assumed): the layer is
/// an in-sync drain (every coordinate is new and seeded positionally), the
/// store was Reserve()d for the layer (no rehash or arena reallocation can
/// happen mid-publication), and no coordinate's predecessor lies in the
/// layer itself. The last one cannot be checked up front for best-first tie
/// layers, so phase A aborts on the first missing predecessor and the
/// caller falls back to the sequential path with the store untouched.
class ParallelLayerMerger {
 public:
  /// `pool` = nullptr uses the process-wide shared pool. Benches inject
  /// explicitly sized pools for thread-count sweeps.
  explicit ParallelLayerMerger(ThreadPool* pool = nullptr);

  ParallelLayerMerger(const ParallelLayerMerger&) = delete;
  ParallelLayerMerger& operator=(const ParallelLayerMerger&) = delete;

  /// Attempts to publish the current layer (coordinates in generation
  /// order, cell states seeded in the same order) into the explorer's
  /// store. True when the layer was merged in parallel: every coordinate is
  /// then stored and its seeds consumed, so the caller's per-coordinate
  /// ComputeAggregate reduces to a lookup. False when the adaptive
  /// controller, the `explore.parallel_merge` failpoint, or a runtime
  /// intra-layer dependency chose the sequential reference path — the store
  /// and seeds are untouched in that case.
  bool MergeLayer(Explorer* explorer, const std::vector<GridCoord>& layer,
                  MergeStrategy strategy, MemoryBudget* budget);

  const MergeStats& stats() const { return stats_; }

 private:
  /// One worker's slice of the layer: the Eq. 17 blocks of coordinates
  /// [begin, begin + count) and, for the radix publisher, their home slots.
  /// Buffers keep their capacity across layers, so the steady state
  /// allocates nothing.
  struct Partial {
    size_t begin = 0;
    size_t count = 0;
    std::vector<double> arena;    // count * block_width
    std::vector<uint32_t> homes;  // count (radix only)
    // Per-chunk merge scratch, reused across the chunk's coordinates.
    std::vector<AggregateOps::State> scratch;
    AggregateOps::State tmp;
    GridCoord pred;
  };

  MergeStrategy ChooseStrategy(size_t n, size_t chunks) const;
  /// Charges partial-buffer capacity growth since the last call.
  void ChargeGrowth(MemoryBudget* budget);

  ThreadPool* pool_;
  std::vector<Partial> partials_;
  MergeStats stats_;
  size_t charged_bytes_ = 0;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_PARALLEL_MERGE_H_
