#ifndef ACQUIRE_CORE_REFINED_QUERY_H_
#define ACQUIRE_CORE_REFINED_QUERY_H_

#include <string>
#include <vector>

#include "exec/evaluation.h"

namespace acquire {

/// One alternative refined query recommended to the user: the refinement
/// vector, its QScore, the aggregate it attains, and a rendered WHERE
/// clause.
struct RefinedQuery {
  /// Grid position; empty for off-grid answers found by repartitioning.
  GridCoord coord;
  /// Per-dimension PScores (Eq. 2's predicate refinement vector).
  std::vector<double> pscores;
  double qscore = 0.0;
  double aggregate = 0.0;  // Aactual of this refined query
  double error = 0.0;      // Err_A against the constraint
  /// Refined predicate conjunction, e.g. "s_acctbal <= 2612.5 AND ...".
  std::string description;

  std::string ToString() const;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_REFINED_QUERY_H_
