#include "core/fingerprint.h"

#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/backend.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace acquire {

namespace {

// splitmix64 finalizer: avalanches an FNV lane so near-identical keys land
// far apart in both halves.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t Fnv1a(const std::string& s, uint64_t basis) {
  uint64_t h = basis;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

const char* SearchOrderName(SearchOrder order) {
  switch (order) {
    case SearchOrder::kAuto:
      return "auto";
    case SearchOrder::kBfs:
      return "bfs";
    case SearchOrder::kShell:
      return "shell";
    case SearchOrder::kBestFirst:
      return "best_first";
  }
  return "?";
}

const char* NormKindName(NormKind kind) {
  switch (kind) {
    case NormKind::kL1:
      return "l1";
    case NormKind::kL2:
      return "l2";
    case NormKind::kLp:
      return "lp";
    case NormKind::kLInf:
      return "linf";
  }
  return "?";
}

// Exact round-trippable double spelling, so 0.1 vs 0.1+ulp flip the key.
std::string Num(double v) { return StringFormat("%.17g", v); }

std::string OptNum(const std::optional<double>& v) {
  return v.has_value() ? Num(*v) : std::string("-");
}

}  // namespace

std::string TaskFingerprint::ToHex() const {
  return StringFormat("%016llx%016llx", static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(lo));
}

Result<std::string> CanonicalTaskKey(const Catalog& catalog,
                                     const QuerySpec& spec,
                                     const AcquireOptions& options) {
  if (options.error_fn) {
    return Status::NotImplemented(
        "task fingerprint: custom error functions have no canonical form");
  }
  if (spec.agg_kind == AggregateKind::kUda) {
    return Status::NotImplemented(
        "task fingerprint: UDA aggregates have no canonical form");
  }

  std::string key = "acq-fp-v1";

  // --- catalog identity ---
  key += StringFormat("|catalog{gen=%llu;load=%s}",
                      static_cast<unsigned long long>(catalog.generation()),
                      catalog.load_params().c_str());
  for (const std::string& name : spec.tables) {
    ACQ_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(name));
    key += StringFormat("|table{%s;rows=%zu;%s}", name.c_str(),
                        table->num_rows(),
                        table->schema().ToString().c_str());
  }

  // --- bound plan ---
  for (const JoinClauseSpec& j : spec.joins) {
    key += StringFormat("|join{%s=%s;ref=%d;cap=%s;w=%s}",
                        j.left_column.c_str(), j.right_column.c_str(),
                        j.refinable ? 1 : 0, Num(j.band_cap).c_str(),
                        Num(j.weight).c_str());
  }
  for (const ExprJoinClauseSpec& j : spec.expr_joins) {
    key += StringFormat("|exprjoin{%s %s %s;ref=%d;cap=%s;w=%s}",
                        j.left_function->ToString().c_str(),
                        CompareOpToString(j.op),
                        j.right_function->ToString().c_str(),
                        j.refinable ? 1 : 0, Num(j.band_cap).c_str(),
                        Num(j.weight).c_str());
  }
  for (const SelectPredicateSpec& p : spec.predicates) {
    key += StringFormat("|pred{%s %s %s;ref=%d;w=%s;max=%s}",
                        p.column.c_str(), CompareOpToString(p.op),
                        Num(p.bound).c_str(), p.refinable ? 1 : 0,
                        Num(p.weight).c_str(),
                        OptNum(p.max_refinement).c_str());
  }
  for (const ExprPredicateSpec& p : spec.expr_predicates) {
    key += StringFormat("|exprpred{%s %s %s;ref=%d;w=%s;max=%s}",
                        p.function->ToString().c_str(),
                        CompareOpToString(p.op), Num(p.bound).c_str(),
                        p.refinable ? 1 : 0, Num(p.weight).c_str(),
                        OptNum(p.max_refinement).c_str());
  }
  for (const CategoricalPredicateSpec& p : spec.categorical_predicates) {
    // Identify the ontology by address: trees are long-lived registry
    // objects, and the catalog generation already invalidates reloads.
    key += StringFormat("|catpred{%s in [%s];ont=%p;w=%s;roll=%s}",
                        p.column.c_str(), Join(p.categories, ",").c_str(),
                        static_cast<const void*>(p.ontology),
                        Num(p.weight).c_str(),
                        Num(p.pscore_per_rollup).c_str());
  }
  for (const ExprPtr& f : spec.fixed_filters) {
    key += StringFormat("|filter{%s}", f->ToString().c_str());
  }
  key += StringFormat("|agg{%s;col=%s}|cons{%s %s}",
                      AggregateKindToString(spec.agg_kind),
                      spec.agg_column.c_str(),
                      ConstraintOpToString(spec.constraint_op),
                      Num(spec.target).c_str());

  // --- result-affecting options, with kAuto resolved ---
  const EvalBackend backend = spec.eval_backend == EvalBackend::kAuto
                                  ? EvalBackend::kCellSorted
                                  : spec.eval_backend;
  SearchOrder order = options.order;
  if (order == SearchOrder::kAuto) {
    order = options.norm.kind() == NormKind::kLInf ? SearchOrder::kShell
                                                   : SearchOrder::kBfs;
  }
  // Mirrors RunAcquire's kAuto resolution: every order batches by default.
  const bool batched = options.batch_explore != BatchExplore::kOff;
  key += StringFormat(
      "|opts{backend=%s;gamma=%s;delta=%s;norm=%s/%s;order=%s;batch=%d;"
      "repart=%d;collect=%d;incr=%d;maxexp=%llu;dpat=%d;stall=%llu}",
      EvalBackendToString(backend), Num(options.gamma).c_str(),
      Num(options.delta).c_str(), NormKindName(options.norm.kind()),
      Num(options.norm.p()).c_str(), SearchOrderName(order), batched ? 1 : 0,
      options.repartition_iters, options.collect_within_gamma ? 1 : 0,
      options.use_incremental ? 1 : 0,
      static_cast<unsigned long long>(options.max_explored),
      options.divergence_patience,
      static_cast<unsigned long long>(options.stall_limit));
  // Deliberately absent: options.memory_budget_bytes, options.run_ctx
  // (deadline/cancellation), failpoint state — they decide whether a run
  // completes, never what a completed run returns — and
  // options.merge_strategy, whose strategies are all bit-exact against the
  // sequential reference (core/parallel_merge.h).
  return key;
}

Result<TaskFingerprint> FingerprintTask(const Catalog& catalog,
                                        const QuerySpec& spec,
                                        const AcquireOptions& options) {
  ACQ_ASSIGN_OR_RETURN(std::string key,
                       CanonicalTaskKey(catalog, spec, options));
  TaskFingerprint fp;
  fp.hi = Mix(Fnv1a(key, 1469598103934665603ULL));
  fp.lo = Mix(Fnv1a(key, 0x6c62272e07bb0142ULL) ^ (key.size() * 0x9e3779b97f4a7c15ULL));
  return fp;
}

}  // namespace acquire
