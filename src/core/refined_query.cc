#include "core/refined_query.h"

#include "common/string_util.h"

namespace acquire {

std::string RefinedQuery::ToString() const {
  return StringFormat("QScore=%.3f agg=%g err=%.4f :: %s", qscore, aggregate,
                      error, description.c_str());
}

}  // namespace acquire
