#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace acquire {

std::string RefinementReport(const AcqTask& task, const RefinedQuery& query) {
  std::string out;
  size_t width = 0;
  std::vector<std::string> befores;
  befores.reserve(task.d());
  for (const RefinementDimPtr& dim : task.dims) {
    befores.push_back(dim->label());
    width = std::max(width, befores.back().size());
  }
  for (size_t i = 0; i < task.d() && i < query.pscores.size(); ++i) {
    double pscore = query.pscores[i];
    std::string after;
    if (pscore <= 0.0) {
      after = "(unchanged)";
    } else {
      after = StringFormat("%s   (+%.3g%% of range)",
                           task.dims[i]->DescribeAt(pscore).c_str(), pscore);
    }
    out += StringFormat("  %-*s  ->  %s\n", static_cast<int>(width),
                        befores[i].c_str(), after.c_str());
  }
  for (const std::string& fixed : task.fixed_predicate_labels) {
    out += StringFormat("  %-*s  ->  (NOREFINE)\n", static_cast<int>(width),
                        fixed.c_str());
  }
  out += StringFormat("  aggregate %s: %g  (error %.4f, QScore %.3f)\n",
                      task.agg.ToString().c_str(), query.aggregate,
                      query.error, query.qscore);
  return out;
}

std::vector<RefinedQuery> ParetoFilter(std::vector<RefinedQuery> queries) {
  auto dominates = [](const RefinedQuery& a, const RefinedQuery& b) {
    if (a.pscores.size() != b.pscores.size()) return false;
    bool strictly_less = false;
    for (size_t i = 0; i < a.pscores.size(); ++i) {
      if (a.pscores[i] > b.pscores[i] + 1e-12) return false;
      if (a.pscores[i] < b.pscores[i] - 1e-12) strictly_less = true;
    }
    return strictly_less;
  };
  std::vector<RefinedQuery> frontier;
  for (size_t i = 0; i < queries.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < queries.size() && !dominated; ++j) {
      dominated = j != i && dominates(queries[j], queries[i]);
    }
    if (!dominated) frontier.push_back(std::move(queries[i]));
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const RefinedQuery& a, const RefinedQuery& b) {
              return a.qscore < b.qscore;
            });
  return frontier;
}

}  // namespace acquire
