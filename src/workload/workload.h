#ifndef ACQUIRE_WORKLOAD_WORKLOAD_H_
#define ACQUIRE_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/planner.h"

namespace acquire {

/// Empirical `q`-quantile of a numeric column (exact; sorts a copy).
Result<double> ColumnQuantile(const Table& table, const std::string& column,
                              double q);

/// Recipe for the benchmark tasks of Section 8.3: a d-predicate selection
/// ACQ over one table whose original aggregate Aactual and target
/// Aexp = Aactual / ratio realize a chosen aggregate ratio.
struct RatioTaskOptions {
  std::string table;
  /// Refinable predicate columns; d = columns.size(). Each predicate is
  /// `col <= quantile(selectivity^(1/d))`, so the original query keeps
  /// roughly `selectivity` of the table.
  std::vector<std::string> columns;
  double selectivity = 0.2;
  AggregateKind agg_kind = AggregateKind::kCount;
  std::string agg_column;  // empty for COUNT(*)
  ConstraintOp constraint_op = ConstraintOp::kEq;
  /// Aactual / Aexp (Section 8.4.1); smaller = more refinement needed.
  double ratio = 0.5;
};

/// A planned ratio task plus the measured original aggregate.
struct RatioTask {
  AcqTask task;
  double base_aggregate = 0.0;  // Aactual of the original query
};

/// Builds and plans the task, measures the original query's aggregate, and
/// sets the constraint target to base_aggregate / ratio.
Result<RatioTask> BuildRatioTask(const Catalog& catalog,
                                 const RatioTaskOptions& options);

}  // namespace acquire

#endif  // ACQUIRE_WORKLOAD_WORKLOAD_H_
