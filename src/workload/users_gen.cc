#include "workload/users_gen.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/string_util.h"

namespace acquire {

namespace {
const char* const kCities[] = {"Boston",  "New York", "Seattle", "Miami",
                               "Austin",  "Chicago",  "Denver",  "Portland",
                               "Atlanta", "Phoenix"};
const char* const kGenders[] = {"Women", "Men"};
const char* const kEducation[] = {"HighSchool", "CollegeGrad", "Masters",
                                  "Doctorate"};
const char* const kInterests[] = {"Retail", "Shopping", "Sports", "Music",
                                  "Travel", "Cooking",  "Gaming", "Fitness"};
}  // namespace

Status GenerateUsers(const UsersOptions& options, Catalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  Rng rng(options.seed);
  auto users = std::make_shared<Table>(
      "users", Schema({{"user_id", DataType::kInt64, ""},
                       {"age", DataType::kInt64, ""},
                       {"income", DataType::kDouble, ""},
                       {"engagement", DataType::kDouble, ""},
                       {"account_age_days", DataType::kInt64, ""},
                       {"city", DataType::kString, ""},
                       {"gender", DataType::kString, ""},
                       {"education", DataType::kString, ""},
                       {"interest", DataType::kString, ""}}));
  users->ReserveRows(options.users);
  for (size_t i = 0; i < options.users; ++i) {
    users->mutable_column(0).AppendInt64(static_cast<int64_t>(i + 1));
    // Age skews young, like a social platform.
    double age_draw = 18.0 + std::fabs(rng.NextGaussian()) * 14.0;
    users->mutable_column(1).AppendInt64(
        std::min<int64_t>(90, static_cast<int64_t>(age_draw)));
    double income = 15000.0 + rng.NextDouble() * rng.NextDouble() * 235000.0;
    users->mutable_column(2).AppendDouble(income);
    users->mutable_column(3).AppendDouble(rng.NextDouble(0.0, 100.0));
    users->mutable_column(4).AppendInt64(rng.NextInt(0, 5000));
    users->mutable_column(5).AppendString(
        kCities[rng.NextBounded(std::size(kCities))]);
    users->mutable_column(6).AppendString(
        kGenders[rng.NextBounded(std::size(kGenders))]);
    users->mutable_column(7).AppendString(
        kEducation[rng.NextBounded(std::size(kEducation))]);
    users->mutable_column(8).AppendString(
        kInterests[rng.NextBounded(std::size(kInterests))]);
  }
  ACQ_RETURN_IF_ERROR(users->FinalizeAppend());
  ACQ_RETURN_IF_ERROR(catalog->AddTable(users));
  catalog->AppendLoadParams(StringFormat(
      "users:rows=%zu,seed=%llu", options.users,
      static_cast<unsigned long long>(options.seed)));
  return Status::OK();
}

Status GeneratePatients(const PatientsOptions& options, Catalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  Rng rng(options.seed);
  auto patients = std::make_shared<Table>(
      "patients", Schema({{"patient_id", DataType::kInt64, ""},
                          {"age", DataType::kInt64, ""},
                          {"weekly_exercise_hours", DataType::kDouble, ""},
                          {"income", DataType::kDouble, ""},
                          {"systolic_bp", DataType::kDouble, ""},
                          {"annual_cost", DataType::kDouble, ""}}));
  patients->ReserveRows(options.patients);
  for (size_t i = 0; i < options.patients; ++i) {
    int64_t age = rng.NextInt(18, 95);
    double exercise = std::max(0.0, 10.0 - age / 12.0 + rng.NextGaussian() * 3.0);
    double income = 20000.0 + rng.NextDouble() * 180000.0;
    double bp = 95.0 + age * 0.5 + rng.NextGaussian() * 12.0;
    double cost = std::max(
        200.0, -2000.0 + age * 180.0 + bp * 25.0 - exercise * 400.0 +
                   rng.NextGaussian() * 1500.0);
    patients->mutable_column(0).AppendInt64(static_cast<int64_t>(i + 1));
    patients->mutable_column(1).AppendInt64(age);
    patients->mutable_column(2).AppendDouble(exercise);
    patients->mutable_column(3).AppendDouble(income);
    patients->mutable_column(4).AppendDouble(bp);
    patients->mutable_column(5).AppendDouble(cost);
  }
  ACQ_RETURN_IF_ERROR(patients->FinalizeAppend());
  ACQ_RETURN_IF_ERROR(catalog->AddTable(patients));
  catalog->AppendLoadParams(StringFormat(
      "patients:rows=%zu,seed=%llu", options.patients,
      static_cast<unsigned long long>(options.seed)));
  return Status::OK();
}

}  // namespace acquire
