#ifndef ACQUIRE_WORKLOAD_TPCH_GEN_H_
#define ACQUIRE_WORKLOAD_TPCH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"

namespace acquire {

/// Deterministic generator for the TPC-H-subset schema the paper evaluates
/// on (supplier / part / partsupp for the join workloads, a numeric
/// lineitem projection for the selection workloads).
///
/// This stands in for official dbgen plus the Chaudhuri-Narasayya skew
/// generator [3]: `zipf_theta` = 0 reproduces TPC-H's uniform distributions
/// (Z=0), 1.0 the paper's skewed variant (Z=1). Column value semantics
/// (domains, key relationships) follow the TPC-H spec closely enough that
/// the paper's example queries run unchanged.
struct TpchOptions {
  size_t suppliers = 1000;
  size_t parts = 2000;
  /// partsupp rows = parts * suppliers_per_part.
  size_t suppliers_per_part = 4;
  size_t lineitems = 100000;
  /// Zipf parameter applied to non-key attribute draws (0 = uniform).
  double zipf_theta = 0.0;
  /// Distinct value ranks used when zipf_theta > 0.
  size_t zipf_ranks = 1000;
  uint64_t seed = 42;
};

/// Creates supplier, part, partsupp and lineitem in `catalog`.
///
/// Schemas:
///   supplier(s_suppkey INT64, s_nationkey INT64, s_acctbal DOUBLE)
///   part(p_partkey INT64, p_size INT64, p_retailprice DOUBLE,
///        p_type STRING)
///   partsupp(ps_partkey INT64, ps_suppkey INT64, ps_availqty INT64,
///            ps_supplycost DOUBLE)
///   lineitem(l_orderkey INT64, l_quantity DOUBLE, l_extendedprice DOUBLE,
///            l_discount DOUBLE, l_tax DOUBLE, l_shipdays DOUBLE)
Status GenerateTpch(const TpchOptions& options, Catalog* catalog);

/// The 150 TPC-H part type strings ("<size> <finish> <metal>").
const std::vector<std::string>& TpchPartTypes();

}  // namespace acquire

#endif  // ACQUIRE_WORKLOAD_TPCH_GEN_H_
