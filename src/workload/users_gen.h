#ifndef ACQUIRE_WORKLOAD_USERS_GEN_H_
#define ACQUIRE_WORKLOAD_USERS_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "storage/catalog.h"

namespace acquire {

/// Synthetic stand-in for the paper's Facebook ad-targeting scenario
/// (Example 1): a `users` table with demographic attributes. The numeric
/// columns drive refinable predicates; the string columns are NOREFINE
/// filters or ontology-refinable categories.
struct UsersOptions {
  size_t users = 100000;
  uint64_t seed = 7;
};

/// users(user_id INT64, age INT64, income DOUBLE, engagement DOUBLE,
///       account_age_days INT64, city STRING, gender STRING,
///       education STRING, interest STRING)
Status GenerateUsers(const UsersOptions& options, Catalog* catalog);

/// Synthetic patient records for the paper's third motivating use case
/// (outlier analysis via AVG constraints).
struct PatientsOptions {
  size_t patients = 50000;
  uint64_t seed = 11;
};

/// patients(patient_id INT64, age INT64, weekly_exercise_hours DOUBLE,
///          income DOUBLE, systolic_bp DOUBLE, annual_cost DOUBLE)
/// annual_cost correlates positively with age and blood pressure and
/// negatively with exercise, so AVG(annual_cost) responds to refinement.
Status GeneratePatients(const PatientsOptions& options, Catalog* catalog);

}  // namespace acquire

#endif  // ACQUIRE_WORKLOAD_USERS_GEN_H_
