#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "exec/evaluation.h"

namespace acquire {

Result<double> ColumnQuantile(const Table& table, const std::string& column,
                              double q) {
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile must lie in [0, 1]");
  }
  ACQ_ASSIGN_OR_RETURN(size_t idx, table.schema().FieldIndex(column));
  const Column& col = table.column(idx);
  if (!IsNumeric(col.type()) || col.size() == 0) {
    return Status::InvalidArgument("quantile needs a non-empty numeric column");
  }
  std::vector<double> values(col.size());
  for (size_t i = 0; i < col.size(); ++i) values[i] = col.GetDouble(i);
  size_t k = static_cast<size_t>(q * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(k),
                   values.end());
  return values[k];
}

Result<RatioTask> BuildRatioTask(const Catalog& catalog,
                                 const RatioTaskOptions& options) {
  if (options.columns.empty()) {
    return Status::InvalidArgument("ratio task needs at least one column");
  }
  if (options.ratio <= 0.0 || options.ratio > 1.0) {
    return Status::InvalidArgument(
        "aggregate ratio must lie in (0, 1]; expansion assumes the original "
        "query undershoots");
  }
  ACQ_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(options.table));

  const double d = static_cast<double>(options.columns.size());
  const double per_dim_quantile = std::pow(options.selectivity, 1.0 / d);

  QuerySpec spec;
  spec.tables = {options.table};
  for (const std::string& column : options.columns) {
    ACQ_ASSIGN_OR_RETURN(double bound,
                         ColumnQuantile(*table, column, per_dim_quantile));
    spec.predicates.push_back(SelectPredicateSpec{
        column, CompareOp::kLe, bound, /*refinable=*/true, 1.0, {}});
  }
  spec.agg_kind = options.agg_kind;
  spec.agg_column = options.agg_column;
  spec.constraint_op = options.constraint_op;
  spec.target = 1.0;  // placeholder; fixed up from the measured aggregate

  ACQ_ASSIGN_OR_RETURN(AcqTask task, PlanAcqTask(catalog, spec));

  // Measure Aactual of the original (unrefined) query.
  DirectEvaluationLayer layer(&task);
  ACQ_ASSIGN_OR_RETURN(
      double base,
      layer.EvaluateQueryValue(std::vector<double>(task.d(), 0.0)));
  if (!(base > 0.0)) {
    return Status::InvalidArgument(StringFormat(
        "original query aggregate is %g; pick a higher selectivity so the "
        "ratio target is meaningful", base));
  }
  task.constraint.target = base / options.ratio;

  RatioTask out{std::move(task), base};
  return out;
}

}  // namespace acquire
