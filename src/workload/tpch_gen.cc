#include "workload/tpch_gen.h"

#include <cmath>
#include <memory>
#include <optional>

#include "common/random.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace acquire {

namespace {

// Draws from [lo, hi]; uniform when no Zipf sampler is given, otherwise a
// Zipf rank mapped linearly onto the domain (rank 1 = most frequent value,
// mirroring the Chaudhuri-Narasayya skewed TPC-D columns).
class ValueSampler {
 public:
  ValueSampler(double theta, size_t ranks, Rng* rng) : rng_(rng) {
    if (theta > 0.0) zipf_.emplace(ranks, theta);
  }

  double Draw(double lo, double hi) {
    if (!zipf_.has_value()) return rng_->NextDouble(lo, hi);
    uint64_t rank = zipf_->Sample(rng_);
    double frac = zipf_->n() == 1
                      ? 0.0
                      : static_cast<double>(rank - 1) /
                            static_cast<double>(zipf_->n() - 1);
    return lo + frac * (hi - lo);
  }

  int64_t DrawInt(int64_t lo, int64_t hi) {
    if (!zipf_.has_value()) return rng_->NextInt(lo, hi);
    return static_cast<int64_t>(std::llround(
        Draw(static_cast<double>(lo), static_cast<double>(hi))));
  }

 private:
  Rng* rng_;
  std::optional<ZipfDistribution> zipf_;
};

}  // namespace

const std::vector<std::string>& TpchPartTypes() {
  static const std::vector<std::string>* const kTypes = [] {
    const char* sizes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                           "PROMO"};
    const char* finishes[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                              "BRUSHED"};
    const char* metals[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
    auto* types = new std::vector<std::string>();
    for (const char* s : sizes) {
      for (const char* f : finishes) {
        for (const char* m : metals) {
          types->push_back(std::string(s) + " " + f + " " + m);
        }
      }
    }
    return types;
  }();
  return *kTypes;
}

Status GenerateTpch(const TpchOptions& options, Catalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  Rng rng(options.seed);
  ValueSampler sampler(options.zipf_theta, options.zipf_ranks, &rng);

  // --- supplier ---
  auto supplier = std::make_shared<Table>(
      "supplier", Schema({{"s_suppkey", DataType::kInt64, ""},
                          {"s_nationkey", DataType::kInt64, ""},
                          {"s_acctbal", DataType::kDouble, ""}}));
  supplier->ReserveRows(options.suppliers);
  for (size_t i = 0; i < options.suppliers; ++i) {
    supplier->mutable_column(0).AppendInt64(static_cast<int64_t>(i + 1));
    supplier->mutable_column(1).AppendInt64(rng.NextInt(0, 24));
    supplier->mutable_column(2).AppendDouble(sampler.Draw(-999.99, 9999.99));
  }
  ACQ_RETURN_IF_ERROR(supplier->FinalizeAppend());
  ACQ_RETURN_IF_ERROR(catalog->AddTable(supplier));

  // --- part ---
  const auto& types = TpchPartTypes();
  auto part = std::make_shared<Table>(
      "part", Schema({{"p_partkey", DataType::kInt64, ""},
                      {"p_size", DataType::kInt64, ""},
                      {"p_retailprice", DataType::kDouble, ""},
                      {"p_type", DataType::kString, ""}}));
  part->ReserveRows(options.parts);
  for (size_t i = 0; i < options.parts; ++i) {
    part->mutable_column(0).AppendInt64(static_cast<int64_t>(i + 1));
    part->mutable_column(1).AppendInt64(sampler.DrawInt(1, 50));
    part->mutable_column(2).AppendDouble(sampler.Draw(900.0, 2098.99));
    part->mutable_column(3).AppendString(
        types[rng.NextBounded(types.size())]);
  }
  ACQ_RETURN_IF_ERROR(part->FinalizeAppend());
  ACQ_RETURN_IF_ERROR(catalog->AddTable(part));

  // --- partsupp ---
  auto partsupp = std::make_shared<Table>(
      "partsupp", Schema({{"ps_partkey", DataType::kInt64, ""},
                          {"ps_suppkey", DataType::kInt64, ""},
                          {"ps_availqty", DataType::kInt64, ""},
                          {"ps_supplycost", DataType::kDouble, ""}}));
  partsupp->ReserveRows(options.parts * options.suppliers_per_part);
  for (size_t p = 0; p < options.parts; ++p) {
    for (size_t s = 0; s < options.suppliers_per_part; ++s) {
      partsupp->mutable_column(0).AppendInt64(static_cast<int64_t>(p + 1));
      partsupp->mutable_column(1).AppendInt64(
          rng.NextInt(1, static_cast<int64_t>(options.suppliers)));
      partsupp->mutable_column(2).AppendInt64(sampler.DrawInt(1, 9999));
      partsupp->mutable_column(3).AppendDouble(sampler.Draw(1.0, 1000.0));
    }
  }
  ACQ_RETURN_IF_ERROR(partsupp->FinalizeAppend());
  ACQ_RETURN_IF_ERROR(catalog->AddTable(partsupp));

  // --- lineitem (numeric projection; the selection-workload table) ---
  auto lineitem = std::make_shared<Table>(
      "lineitem", Schema({{"l_orderkey", DataType::kInt64, ""},
                          {"l_quantity", DataType::kDouble, ""},
                          {"l_extendedprice", DataType::kDouble, ""},
                          {"l_discount", DataType::kDouble, ""},
                          {"l_tax", DataType::kDouble, ""},
                          {"l_shipdays", DataType::kDouble, ""}}));
  lineitem->ReserveRows(options.lineitems);
  for (size_t i = 0; i < options.lineitems; ++i) {
    lineitem->mutable_column(0).AppendInt64(static_cast<int64_t>(i / 4 + 1));
    lineitem->mutable_column(1).AppendDouble(sampler.Draw(1.0, 50.0));
    lineitem->mutable_column(2).AppendDouble(sampler.Draw(900.0, 104950.0));
    lineitem->mutable_column(3).AppendDouble(sampler.Draw(0.0, 0.10));
    lineitem->mutable_column(4).AppendDouble(sampler.Draw(0.0, 0.08));
    lineitem->mutable_column(5).AppendDouble(sampler.Draw(1.0, 2557.0));
  }
  ACQ_RETURN_IF_ERROR(lineitem->FinalizeAppend());
  ACQ_RETURN_IF_ERROR(catalog->AddTable(lineitem));

  catalog->AppendLoadParams(StringFormat(
      "tpch:suppliers=%zu,parts=%zu,spp=%zu,lineitems=%zu,seed=%llu,"
      "zipf=%g/%zu",
      options.suppliers, options.parts, options.suppliers_per_part,
      options.lineitems, static_cast<unsigned long long>(options.seed),
      options.zipf_theta, options.zipf_ranks));
  return Status::OK();
}

}  // namespace acquire
