#ifndef ACQUIRE_EXPR_ONTOLOGY_H_
#define ACQUIRE_EXPR_ONTOLOGY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/refinement_dim.h"

namespace acquire {

/// Taxonomy tree over categorical values (Section 7.3, Figure 7). Rolling a
/// predicate's categories up the tree relaxes it; refinement distance is
/// measured in roll-up steps weighted into PScore units by CategoricalDim.
class OntologyTree {
 public:
  /// Adds `name` under `parent`; an empty parent makes `name` the root
  /// (exactly one root allowed, and parents must be added first).
  Status AddNode(const std::string& name, const std::string& parent);

  bool Contains(const std::string& name) const {
    return nodes_.count(name) > 0;
  }

  /// Root has depth 0.
  Result<int> Depth(const std::string& name) const;

  /// The ancestor `rollups` levels above `name`, clamped at the root.
  Result<std::string> Ancestor(const std::string& name, int rollups) const;

  /// True when `ancestor` lies on the root path of `node` (or equals it).
  Result<bool> IsAncestorOrSelf(const std::string& ancestor,
                                const std::string& node) const;

  /// Minimum number of roll-up steps applied to the nodes of `base` until
  /// one of the rolled-up subtrees covers `value`:
  ///   min_b (depth(b) - depth(lca(b, value))).
  /// NotFound when `value` is not in the tree.
  Result<int> RollupsToCover(const std::vector<std::string>& base,
                             const std::string& value) const;

  /// Depth of the deepest node.
  int height() const { return height_; }

  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    std::string parent;  // empty for the root
    int depth = 0;
  };
  std::unordered_map<std::string, Node> nodes_;
  std::string root_;
  int height_ = 0;
};

/// Categorical predicate `column IN (base_categories)` refined by ontology
/// roll-ups (Section 7.3). Each roll-up step costs `pscore_per_rollup`
/// PScore units (default 100 / tree height, so full generalization to the
/// root scores about 100, commensurate with numeric predicates).
class CategoricalDim final : public RefinementDim {
 public:
  CategoricalDim(std::string column, std::vector<std::string> base_categories,
                 const OntologyTree* ontology, double pscore_per_rollup = 0.0);

  Status Bind(const Schema& schema) override;
  double NeededPScore(const Table& table, size_t row) const override;
  Status PrecomputeNeeded(const Table& table) const override;
  double MaxPScore() const override;
  std::string DescribeAt(double pscore) const override;
  std::string label() const override;

  /// Roll-up steps implied by a PScore.
  int RollupsAt(double pscore) const;

 private:
  std::string column_;
  std::vector<std::string> base_;
  const OntologyTree* ontology_;
  double pscore_per_rollup_;
  int col_index_ = -1;
  // Per-distinct-value roll-up cache, filled lazily by NeededPScore (or in
  // bulk by PrecomputeNeeded, after which concurrent lookups are safe).
  mutable std::unordered_map<std::string, int> rollups_;
};

}  // namespace acquire

#endif  // ACQUIRE_EXPR_ONTOLOGY_H_
