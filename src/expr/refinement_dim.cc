#include "expr/refinement_dim.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace acquire {

namespace {
// Smallest positive PScore; assigned to tuples sitting exactly on a strict
// bound, which need *some* (arbitrarily small) refinement to be admitted.
constexpr double kEpsilonPScore = 1e-9;
}  // namespace

NumericDim::NumericDim(std::string column, bool is_upper, double bound,
                       bool strict, double domain_lo, double domain_hi)
    : column_(std::move(column)),
      is_upper_(is_upper),
      bound_(bound),
      strict_(strict),
      domain_lo_(domain_lo),
      domain_hi_(domain_hi) {
  // Eq. 1 denominator: the base predicate interval width. For `x < b` over
  // domain [lo, hi] the interval is (lo, b); for `x > a` it is (a, hi).
  width_ = is_upper_ ? (bound_ - domain_lo_) : (domain_hi_ - bound_);
  if (width_ <= 0.0) {
    // Degenerate interval (bound at or outside the data domain). Fall back
    // to a bound-relative denominator so PScore stays a sane percentage.
    width_ = std::max(1.0, std::fabs(bound_));
  }
}

Status NumericDim::Bind(const Schema& schema) {
  ACQ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_));
  if (!IsNumeric(schema.field(idx).type)) {
    return Status::TypeError("refinable predicate on non-numeric column: " +
                             column_);
  }
  col_index_ = static_cast<int>(idx);
  return Status::OK();
}

double NumericDim::NeededPScore(const Table& table, size_t row) const {
  double v = table.column(static_cast<size_t>(col_index_)).GetDouble(row);
  double violation;
  if (is_upper_) {
    if (strict_ ? v < bound_ : v <= bound_) return 0.0;
    violation = v - bound_;
  } else {
    if (strict_ ? v > bound_ : v >= bound_) return 0.0;
    violation = bound_ - v;
  }
  if (violation == 0.0) return kEpsilonPScore;  // exactly on a strict bound
  double pscore = violation / width_ * 100.0;
  return pscore > MaxPScore() ? kUnreachable : pscore;
}

double NumericDim::MaxPScore() const {
  double slack = is_upper_ ? (domain_hi_ - bound_) : (bound_ - domain_lo_);
  double domain_cap = std::max(0.0, slack / width_ * 100.0);
  return std::min(domain_cap, user_cap_);
}

double NumericDim::RefinedBound(double pscore) const {
  double delta = pscore / 100.0 * width_;
  return is_upper_ ? bound_ + delta : bound_ - delta;
}

std::string NumericDim::DescribeAt(double pscore) const {
  if (pscore <= 0.0) return label();
  // Refined intervals are closed on the refined side.
  return StringFormat("%s %s %g", column_.c_str(), is_upper_ ? "<=" : ">=",
                      RefinedBound(pscore));
}

std::string NumericDim::label() const {
  const char* op = is_upper_ ? (strict_ ? "<" : "<=") : (strict_ ? ">" : ">=");
  return StringFormat("%s %s %g", column_.c_str(), op, bound_);
}

JoinDim::JoinDim(std::string left_column, std::string right_column,
                 double band_cap)
    : left_column_(std::move(left_column)),
      right_column_(std::move(right_column)),
      band_cap_(band_cap) {}

Status JoinDim::Bind(const Schema& schema) {
  ACQ_ASSIGN_OR_RETURN(size_t l, schema.FieldIndex(left_column_));
  ACQ_ASSIGN_OR_RETURN(size_t r, schema.FieldIndex(right_column_));
  if (!IsNumeric(schema.field(l).type) || !IsNumeric(schema.field(r).type)) {
    return Status::TypeError("refinable join on non-numeric columns: " +
                             label());
  }
  left_index_ = static_cast<int>(l);
  right_index_ = static_cast<int>(r);
  return Status::OK();
}

double JoinDim::NeededPScore(const Table& table, size_t row) const {
  double l = table.column(static_cast<size_t>(left_index_)).GetDouble(row);
  double r = table.column(static_cast<size_t>(right_index_)).GetDouble(row);
  // Section 2.4: equi-join PScore denominator is 100, so the score equals
  // the band width |left - right| in value units.
  double band = std::fabs(l - r);
  return band > band_cap_ ? kUnreachable : band;
}

std::string JoinDim::DescribeAt(double pscore) const {
  if (pscore <= 0.0) return label();
  return StringFormat("ABS(%s - %s) <= %g", left_column_.c_str(),
                      right_column_.c_str(), pscore);
}

std::string JoinDim::label() const {
  return left_column_ + " = " + right_column_;
}

ExprDim::ExprDim(ExprPtr function, bool is_upper, double bound, bool strict,
                 double domain_lo, double domain_hi,
                 double pscore_denominator)
    : function_(std::move(function)),
      is_upper_(is_upper),
      bound_(bound),
      strict_(strict),
      domain_lo_(domain_lo),
      domain_hi_(domain_hi) {
  if (pscore_denominator > 0.0) {
    width_ = pscore_denominator;  // join semantics: fixed denominator
  } else {
    width_ = is_upper_ ? (bound_ - domain_lo_) : (domain_hi_ - bound_);
    if (width_ <= 0.0) {
      width_ = std::max(1.0, std::fabs(bound_));
    }
  }
}

Status ExprDim::Bind(const Schema& schema) {
  if (function_ == nullptr) {
    return Status::InvalidArgument("ExprDim with null predicate function");
  }
  return function_->Bind(schema);
}

double ExprDim::NeededPScore(const Table& table, size_t row) const {
  auto value = function_->Eval(table, row);
  if (!value.ok()) return kUnreachable;  // e.g. division by zero
  auto v = value->AsDouble();
  if (!v.ok()) return kUnreachable;
  double violation;
  if (is_upper_) {
    if (strict_ ? *v < bound_ : *v <= bound_) return 0.0;
    violation = *v - bound_;
  } else {
    if (strict_ ? *v > bound_ : *v >= bound_) return 0.0;
    violation = bound_ - *v;
  }
  if (violation == 0.0) return kEpsilonPScore;
  double pscore = violation / width_ * 100.0;
  return pscore > MaxPScore() ? kUnreachable : pscore;
}

double ExprDim::MaxPScore() const {
  double slack = is_upper_ ? (domain_hi_ - bound_) : (bound_ - domain_lo_);
  double domain_cap = std::max(0.0, slack / width_ * 100.0);
  return std::min(domain_cap, user_cap_);
}

double ExprDim::RefinedBound(double pscore) const {
  double delta = pscore / 100.0 * width_;
  return is_upper_ ? bound_ + delta : bound_ - delta;
}

std::string ExprDim::DescribeAt(double pscore) const {
  if (pscore <= 0.0) return label();
  return StringFormat("%s %s %g", function_->ToString().c_str(),
                      is_upper_ ? "<=" : ">=", RefinedBound(pscore));
}

std::string ExprDim::label() const {
  const char* op = is_upper_ ? (strict_ ? "<" : "<=") : (strict_ ? ">" : ">=");
  return StringFormat("%s %s %g", function_->ToString().c_str(), op, bound_);
}

}  // namespace acquire
