#ifndef ACQUIRE_EXPR_INTERVAL_H_
#define ACQUIRE_EXPR_INTERVAL_H_

#include <string>

namespace acquire {

/// A (possibly half-open) numeric interval. Predicate intervals P_I from
/// Section 2.2 of the paper: the set of acceptable values for a predicate
/// function.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool lo_open = false;
  bool hi_open = false;

  static Interval Closed(double lo, double hi) { return {lo, hi, false, false}; }
  static Interval Point(double v) { return {v, v, false, false}; }

  bool Contains(double v) const {
    if (lo_open ? v <= lo : v < lo) return false;
    if (hi_open ? v >= hi : v > hi) return false;
    return true;
  }

  double Width() const { return hi - lo; }
  bool IsPoint() const { return lo == hi; }
  bool IsEmpty() const { return hi < lo || (hi == lo && (lo_open || hi_open)); }

  std::string ToString() const;

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi && lo_open == other.lo_open &&
           hi_open == other.hi_open;
  }
};

}  // namespace acquire

#endif  // ACQUIRE_EXPR_INTERVAL_H_
