#ifndef ACQUIRE_EXPR_EXPR_H_
#define ACQUIRE_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace acquire {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpToString(CompareOp op);
const char* ArithOpToString(ArithOp op);

/// Flips the operand order: a OP b == b Flip(OP) a.
CompareOp FlipCompareOp(CompareOp op);

/// Boolean/scalar expression tree for NOREFINE filters and general
/// predicates. Column references are resolved against a schema by Bind();
/// evaluation then reads the bound column index directly.
class Expr {
 public:
  enum class Kind {
    kColumn,      // named column reference
    kLiteral,     // constant Value
    kCompare,     // child[0] OP child[1]
    kArith,       // child[0] op child[1]
    kAnd,         // conjunction over children
    kOr,          // disjunction over children
    kNot,         // !child[0]
    kIn,          // child[0] IN (literals)
    kBetween,     // literals[0] <= child[0] <= literals[1]
  };

  /// --- Factory helpers (the public construction API) ---
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(std::vector<ExprPtr> children);
  static ExprPtr Or(std::vector<ExprPtr> children);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr In(ExprPtr needle, std::vector<Value> haystack);
  static ExprPtr Between(ExprPtr operand, Value lo, Value hi);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const std::vector<Value>& values() const { return values_; }

  /// Resolves every column reference in the tree against `schema`.
  Status Bind(const Schema& schema);
  bool bound() const;

  /// Evaluates against row `row` of `table` (whose schema must match the
  /// bound schema). Boolean results are int64 0/1.
  Result<Value> Eval(const Table& table, size_t row) const;

  /// Convenience: evaluates and coerces to boolean (errors on non-numeric).
  Result<bool> EvalBool(const Table& table, size_t row) const;

  /// SQL-ish rendering, e.g. "(p_size = 10 AND p_type = 'STEEL')".
  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string column_name_;
  int bound_index_ = -1;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
  std::vector<Value> values_;  // kIn haystack / kBetween bounds
};

}  // namespace acquire

#endif  // ACQUIRE_EXPR_EXPR_H_
