#ifndef ACQUIRE_EXPR_REFINEMENT_DIM_H_
#define ACQUIRE_EXPR_REFINEMENT_DIM_H_

#include <limits>
#include <memory>
#include <string>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace acquire {

/// One axis of the Refined Space (Section 4): a refinable predicate
/// decomposed into its predicate function and interval. A dimension maps a
/// tuple to the minimum PScore (Eq. 1, percent refinement) at which the
/// refined predicate admits the tuple, and can render the refined predicate
/// at any PScore.
///
/// Concrete dimensions: NumericDim (one-sided select predicate), JoinDim
/// (equi/band join, Section 2.4), CategoricalDim (ontology roll-up,
/// Section 7.3, in expr/ontology.h).
class RefinementDim {
 public:
  /// NeededPScore result for tuples no refinement of this predicate admits.
  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

  virtual ~RefinementDim() = default;

  /// Resolves column references against the (joined) base-relation schema.
  virtual Status Bind(const Schema& schema) = 0;

  /// Minimum PScore this dimension must be refined by for `row` to satisfy
  /// the refined predicate; 0 when the original predicate already holds.
  virtual double NeededPScore(const Table& table, size_t row) const = 0;

  /// Pre-resolves any internal memoization for every row of `table` so that
  /// subsequent NeededPScore calls over those rows are read-only and safe
  /// to issue from multiple threads (the parallel needed-matrix build does
  /// exactly that). Default: no-op — the numeric dimensions are stateless.
  virtual Status PrecomputeNeeded(const Table& table) const {
    (void)table;
    return Status::OK();
  }

  /// Largest meaningful PScore (further refinement cannot admit more
  /// tuples), bounded by the data domain and any user-set refinement cap.
  virtual double MaxPScore() const = 0;

  /// SQL fragment of the predicate refined by `pscore` (0 = original).
  virtual std::string DescribeAt(double pscore) const = 0;

  /// The original predicate's display form, e.g. "s_acctbal < 2000".
  virtual std::string label() const = 0;

  /// Weight for LWp weighted-norm preferences (Section 7.1).
  double weight() const { return weight_; }
  void set_weight(double w) { weight_ = w; }

 private:
  double weight_ = 1.0;
};

using RefinementDimPtr = std::unique_ptr<RefinementDim>;

/// One-sided numeric select predicate: `column <op> bound` where <op> is one
/// of <, <=, >, >=. Range predicates are two NumericDims (Section 2.2).
class NumericDim final : public RefinementDim {
 public:
  /// `is_upper`: true for "< / <=" predicates (the upper bound relaxes
  /// upward), false for "> / >=" (the lower bound relaxes downward).
  /// `domain_lo`/`domain_hi` are the column's data bounds: they set the
  /// PScore denominator (interval width) and the refinement cap.
  /// `strict` marks < / > (vs <= / >=).
  NumericDim(std::string column, bool is_upper, double bound, bool strict,
             double domain_lo, double domain_hi);

  Status Bind(const Schema& schema) override;
  double NeededPScore(const Table& table, size_t row) const override;
  double MaxPScore() const override;
  std::string DescribeAt(double pscore) const override;
  std::string label() const override;

  /// The refined bound value at `pscore` (used by the SQL printer and by
  /// the baselines, which search in bound space).
  double RefinedBound(double pscore) const;

  /// Caps MaxPScore below the domain-derived limit (Section 7.1 user limit).
  void set_max_refinement(double pscore_cap) { user_cap_ = pscore_cap; }

  const std::string& column() const { return column_; }
  bool is_upper() const { return is_upper_; }
  double bound() const { return bound_; }
  double width() const { return width_; }

 private:
  std::string column_;
  int col_index_ = -1;
  bool is_upper_;
  double bound_;
  bool strict_;
  double domain_lo_;
  double domain_hi_;
  double width_;     // PScore denominator (Eq. 1)
  double user_cap_ = kUnreachable;
};

/// Join predicate `left = right` (or a pre-widened band). Refinement widens
/// the accepted |left - right| band; per Section 2.4 the PScore denominator
/// is fixed at 100, so PScore equals the band width in value units.
class JoinDim final : public RefinementDim {
 public:
  /// `band_cap` bounds how far the band may widen (MaxPScore).
  JoinDim(std::string left_column, std::string right_column, double band_cap);

  Status Bind(const Schema& schema) override;
  double NeededPScore(const Table& table, size_t row) const override;
  double MaxPScore() const override { return band_cap_; }
  std::string DescribeAt(double pscore) const override;
  std::string label() const override;

  const std::string& left_column() const { return left_column_; }
  const std::string& right_column() const { return right_column_; }

 private:
  std::string left_column_;
  std::string right_column_;
  int left_index_ = -1;
  int right_index_ = -1;
  double band_cap_;
};

/// One-sided predicate over an arbitrary numeric *predicate function*
/// (Section 2.2: P_F is any monotonic function on the relations'
/// attributes): `function(t) <op> bound`. This covers arithmetic select
/// predicates ("l_quantity * l_extendedprice < 5000") and, with the
/// join-semantics denominator, non-equi join predicates ("2*A.x < 3*B.x",
/// Section 2.4: P_F = delta(f1, f2), denominator fixed at 100 so the
/// PScore is the band width in value units).
class ExprDim final : public RefinementDim {
 public:
  /// `domain_lo`/`domain_hi` bound the function's values over the data
  /// (the planner measures them). `pscore_denominator` overrides Eq. 1's
  /// interval-width denominator when positive — pass 100 for join
  /// semantics; 0 derives it from bound and domain like NumericDim.
  ExprDim(ExprPtr function, bool is_upper, double bound, bool strict,
          double domain_lo, double domain_hi, double pscore_denominator = 0.0);

  Status Bind(const Schema& schema) override;
  double NeededPScore(const Table& table, size_t row) const override;
  double MaxPScore() const override;
  std::string DescribeAt(double pscore) const override;
  std::string label() const override;

  double RefinedBound(double pscore) const;
  void set_max_refinement(double pscore_cap) { user_cap_ = pscore_cap; }

  const ExprPtr& function() const { return function_; }
  double bound() const { return bound_; }
  double width() const { return width_; }

 private:
  ExprPtr function_;
  bool is_upper_;
  double bound_;
  bool strict_;
  double domain_lo_;
  double domain_hi_;
  double width_;
  double user_cap_ = kUnreachable;
};

}  // namespace acquire

#endif  // ACQUIRE_EXPR_REFINEMENT_DIM_H_
