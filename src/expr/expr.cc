#include "expr/expr.h"

#include "common/string_util.h"

namespace acquire {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

ExprPtr Expr::Column(std::string name) {
  auto e = ExprPtr(new Expr(Kind::kColumn));
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr(Kind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(Kind::kCompare));
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(Kind::kArith));
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(std::vector<ExprPtr> children) {
  auto e = ExprPtr(new Expr(Kind::kAnd));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Or(std::vector<ExprPtr> children) {
  auto e = ExprPtr(new Expr(Kind::kOr));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = ExprPtr(new Expr(Kind::kNot));
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::In(ExprPtr needle, std::vector<Value> haystack) {
  auto e = ExprPtr(new Expr(Kind::kIn));
  e->children_ = {std::move(needle)};
  e->values_ = std::move(haystack);
  return e;
}

ExprPtr Expr::Between(ExprPtr operand, Value lo, Value hi) {
  auto e = ExprPtr(new Expr(Kind::kBetween));
  e->children_ = {std::move(operand)};
  e->values_ = {std::move(lo), std::move(hi)};
  return e;
}

Status Expr::Bind(const Schema& schema) {
  if (kind_ == Kind::kColumn) {
    ACQ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_name_));
    bound_index_ = static_cast<int>(idx);
    return Status::OK();
  }
  for (const ExprPtr& child : children_) {
    ACQ_RETURN_IF_ERROR(child->Bind(schema));
  }
  return Status::OK();
}

bool Expr::bound() const {
  if (kind_ == Kind::kColumn) return bound_index_ >= 0;
  for (const ExprPtr& child : children_) {
    if (!child->bound()) return false;
  }
  return true;
}

namespace {

Result<Value> CompareValues(CompareOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value(int64_t{0});
  int c = a.Compare(b);
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value(int64_t{result ? 1 : 0});
}

}  // namespace

Result<Value> Expr::Eval(const Table& table, size_t row) const {
  switch (kind_) {
    case Kind::kColumn: {
      if (bound_index_ < 0) {
        return Status::Internal("unbound column reference: " + column_name_);
      }
      return table.Get(row, static_cast<size_t>(bound_index_));
    }
    case Kind::kLiteral:
      return literal_;
    case Kind::kCompare: {
      ACQ_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(table, row));
      ACQ_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(table, row));
      return CompareValues(compare_op_, lhs, rhs);
    }
    case Kind::kArith: {
      ACQ_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(table, row));
      ACQ_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(table, row));
      ACQ_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      ACQ_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
      }
      return Status::Internal("unreachable arith op");
    }
    case Kind::kAnd: {
      for (const ExprPtr& child : children_) {
        ACQ_ASSIGN_OR_RETURN(bool b, child->EvalBool(table, row));
        if (!b) return Value(int64_t{0});
      }
      return Value(int64_t{1});
    }
    case Kind::kOr: {
      for (const ExprPtr& child : children_) {
        ACQ_ASSIGN_OR_RETURN(bool b, child->EvalBool(table, row));
        if (b) return Value(int64_t{1});
      }
      return Value(int64_t{0});
    }
    case Kind::kNot: {
      ACQ_ASSIGN_OR_RETURN(bool b, children_[0]->EvalBool(table, row));
      return Value(int64_t{b ? 0 : 1});
    }
    case Kind::kIn: {
      ACQ_ASSIGN_OR_RETURN(Value needle, children_[0]->Eval(table, row));
      for (const Value& candidate : values_) {
        if (needle == candidate) return Value(int64_t{1});
      }
      return Value(int64_t{0});
    }
    case Kind::kBetween: {
      ACQ_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(table, row));
      ACQ_ASSIGN_OR_RETURN(Value ge, CompareValues(CompareOp::kGe, v, values_[0]));
      ACQ_ASSIGN_OR_RETURN(Value le, CompareValues(CompareOp::kLe, v, values_[1]));
      return Value(int64_t{(ge.int64() && le.int64()) ? 1 : 0});
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<bool> Expr::EvalBool(const Table& table, size_t row) const {
  ACQ_ASSIGN_OR_RETURN(Value v, Eval(table, row));
  if (v.is_null()) return false;
  ACQ_ASSIGN_OR_RETURN(double d, v.AsDouble());
  return d != 0.0;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_name_;
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kCompare:
      return children_[0]->ToString() + " " + CompareOpToString(compare_op_) +
             " " + children_[1]->ToString();
    case Kind::kArith:
      return "(" + children_[0]->ToString() + " " +
             ArithOpToString(arith_op_) + " " + children_[1]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const ExprPtr& child : children_) parts.push_back(child->ToString());
      return "(" + Join(parts, kind_ == Kind::kAnd ? " AND " : " OR ") + ")";
    }
    case Kind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case Kind::kIn: {
      std::vector<std::string> parts;
      parts.reserve(values_.size());
      for (const Value& v : values_) parts.push_back(v.ToString());
      return children_[0]->ToString() + " IN (" + Join(parts, ", ") + ")";
    }
    case Kind::kBetween:
      return children_[0]->ToString() + " BETWEEN " + values_[0].ToString() +
             " AND " + values_[1].ToString();
  }
  return "?";
}

}  // namespace acquire
