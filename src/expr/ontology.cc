#include "expr/ontology.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace acquire {

Status OntologyTree::AddNode(const std::string& name,
                             const std::string& parent) {
  if (name.empty()) return Status::InvalidArgument("empty node name");
  if (nodes_.count(name)) {
    return Status::AlreadyExists("ontology node exists: " + name);
  }
  Node node;
  if (parent.empty()) {
    if (!root_.empty()) {
      return Status::InvalidArgument("ontology already has a root: " + root_);
    }
    root_ = name;
    node.depth = 0;
  } else {
    auto it = nodes_.find(parent);
    if (it == nodes_.end()) {
      return Status::NotFound("unknown parent node: " + parent);
    }
    node.parent = parent;
    node.depth = it->second.depth + 1;
  }
  height_ = std::max(height_, node.depth);
  nodes_.emplace(name, std::move(node));
  return Status::OK();
}

Result<int> OntologyTree::Depth(const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("no such node: " + name);
  return it->second.depth;
}

Result<std::string> OntologyTree::Ancestor(const std::string& name,
                                           int rollups) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("no such node: " + name);
  std::string current = name;
  for (int i = 0; i < rollups; ++i) {
    const Node& node = nodes_.at(current);
    if (node.parent.empty()) break;  // clamp at the root
    current = node.parent;
  }
  return current;
}

Result<bool> OntologyTree::IsAncestorOrSelf(const std::string& ancestor,
                                            const std::string& node) const {
  if (!Contains(ancestor)) return Status::NotFound("no such node: " + ancestor);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return Status::NotFound("no such node: " + node);
  std::string current = node;
  for (;;) {
    if (current == ancestor) return true;
    const Node& n = nodes_.at(current);
    if (n.parent.empty()) return false;
    current = n.parent;
  }
}

Result<int> OntologyTree::RollupsToCover(const std::vector<std::string>& base,
                                         const std::string& value) const {
  auto vit = nodes_.find(value);
  if (vit == nodes_.end()) return Status::NotFound("no such node: " + value);
  // Root path of `value`, by name, for LCA lookups.
  std::vector<std::string> value_path;
  {
    std::string current = value;
    for (;;) {
      value_path.push_back(current);
      const Node& n = nodes_.at(current);
      if (n.parent.empty()) break;
      current = n.parent;
    }
  }
  int best = -1;
  for (const std::string& b : base) {
    auto bit = nodes_.find(b);
    if (bit == nodes_.end()) return Status::NotFound("no such node: " + b);
    // Walk up from b; the first ancestor on value's root path is the LCA.
    std::string current = b;
    int rollups = 0;
    for (;;) {
      if (std::find(value_path.begin(), value_path.end(), current) !=
          value_path.end()) {
        break;
      }
      const Node& n = nodes_.at(current);
      if (n.parent.empty()) break;  // reached root; root covers everything
      current = n.parent;
      ++rollups;
    }
    if (best < 0 || rollups < best) best = rollups;
  }
  if (best < 0) return Status::InvalidArgument("empty base category set");
  return best;
}

CategoricalDim::CategoricalDim(std::string column,
                               std::vector<std::string> base_categories,
                               const OntologyTree* ontology,
                               double pscore_per_rollup)
    : column_(std::move(column)),
      base_(std::move(base_categories)),
      ontology_(ontology),
      pscore_per_rollup_(pscore_per_rollup) {
  if (pscore_per_rollup_ <= 0.0) {
    pscore_per_rollup_ =
        ontology_->height() > 0 ? 100.0 / ontology_->height() : 100.0;
  }
}

Status CategoricalDim::Bind(const Schema& schema) {
  ACQ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_));
  if (schema.field(idx).type != DataType::kString) {
    return Status::TypeError("categorical predicate on non-string column: " +
                             column_);
  }
  col_index_ = static_cast<int>(idx);
  if (base_.empty()) {
    return Status::InvalidArgument("categorical predicate with no categories");
  }
  for (const std::string& b : base_) {
    if (!ontology_->Contains(b)) {
      return Status::NotFound("category not in ontology: " + b);
    }
  }
  return Status::OK();
}

double CategoricalDim::NeededPScore(const Table& table, size_t row) const {
  const std::string& value =
      table.column(static_cast<size_t>(col_index_)).GetString(row);
  auto it = rollups_.find(value);
  int rollups;
  if (it != rollups_.end()) {
    rollups = it->second;
  } else {
    Result<int> r = ontology_->RollupsToCover(base_, value);
    rollups = r.ok() ? r.value() : -1;
    rollups_.emplace(value, rollups);
  }
  if (rollups < 0) return kUnreachable;  // value outside the ontology
  return rollups * pscore_per_rollup_;
}

Status CategoricalDim::PrecomputeNeeded(const Table& table) const {
  if (col_index_ < 0) {
    return Status::Internal("CategoricalDim not bound before precompute");
  }
  // One serial pass touching every row fills rollups_ for every distinct
  // value that can ever be queried; NeededPScore then only reads the map.
  for (size_t row = 0; row < table.num_rows(); ++row) {
    NeededPScore(table, row);
  }
  return Status::OK();
}

double CategoricalDim::MaxPScore() const {
  // Any value is covered by at most height() roll-ups (the root).
  return ontology_->height() * pscore_per_rollup_;
}

int CategoricalDim::RollupsAt(double pscore) const {
  if (pscore <= 0.0) return 0;
  return static_cast<int>(std::floor(pscore / pscore_per_rollup_ + 1e-9));
}

std::string CategoricalDim::DescribeAt(double pscore) const {
  int rollups = RollupsAt(pscore);
  std::vector<std::string> cover;
  for (const std::string& b : base_) {
    Result<std::string> a = ontology_->Ancestor(b, rollups);
    std::string node = a.ok() ? a.value() : b;
    if (std::find(cover.begin(), cover.end(), node) == cover.end()) {
      cover.push_back(std::move(node));
    }
  }
  std::vector<std::string> quoted;
  quoted.reserve(cover.size());
  for (const std::string& node : cover) quoted.push_back("'" + node + "'");
  return column_ + " IN (" + Join(quoted, ", ") + ")";
}

std::string CategoricalDim::label() const { return DescribeAt(0.0); }

}  // namespace acquire
