#ifndef ACQUIRE_EXPR_CUSTOM_METRIC_DIM_H_
#define ACQUIRE_EXPR_CUSTOM_METRIC_DIM_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "expr/refinement_dim.h"

namespace acquire {

/// Section 2.3: "while percent refinement is the default predicate
/// refinement metric used in this work, a user can override the metric with
/// custom (monotonic) functions without changes to our algorithm."
///
/// CustomMetricDim decorates any dimension with a user metric m: the
/// decorated NeededPScore is m(inner_pscore). The metric must be monotone
/// nondecreasing with m(0) = 0 — that preserves Theorem 3 (containment
/// order) and hence every guarantee of the search. DescribeAt inverts the
/// metric numerically (bisection over the inner scale) so rendered refined
/// predicates stay exact.
class CustomMetricDim final : public RefinementDim {
 public:
  /// Maps an inner PScore (>= 0) to the user's scale; must be monotone
  /// nondecreasing and map 0 to 0.
  using Metric = std::function<double(double)>;

  CustomMetricDim(RefinementDimPtr inner, Metric metric,
                  std::string metric_name = "custom")
      : inner_(std::move(inner)),
        metric_(std::move(metric)),
        metric_name_(std::move(metric_name)) {}

  Status Bind(const Schema& schema) override { return inner_->Bind(schema); }

  double NeededPScore(const Table& table, size_t row) const override {
    double inner = inner_->NeededPScore(table, row);
    if (inner == kUnreachable) return kUnreachable;
    return metric_(inner);
  }

  Status PrecomputeNeeded(const Table& table) const override {
    return inner_->PrecomputeNeeded(table);
  }

  double MaxPScore() const override {
    double cap = inner_->MaxPScore();
    if (cap == kUnreachable) return kUnreachable;
    return metric_(cap);
  }

  std::string DescribeAt(double pscore) const override {
    return inner_->DescribeAt(InverseMetric(pscore));
  }

  std::string label() const override { return inner_->label(); }

  const RefinementDim& inner() const { return *inner_; }
  const std::string& metric_name() const { return metric_name_; }

  /// Largest inner PScore whose metric value is <= `pscore` (bisection);
  /// exposed for tests.
  double InverseMetric(double pscore) const;

 private:
  RefinementDimPtr inner_;
  Metric metric_;
  std::string metric_name_;
};

}  // namespace acquire

#endif  // ACQUIRE_EXPR_CUSTOM_METRIC_DIM_H_
