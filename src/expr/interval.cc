#include "expr/interval.h"

#include "common/string_util.h"

namespace acquire {

std::string Interval::ToString() const {
  return StringFormat("%c%g, %g%c", lo_open ? '(' : '[', lo, hi,
                      hi_open ? ')' : ']');
}

}  // namespace acquire
