#include "expr/custom_metric_dim.h"

#include <cmath>

namespace acquire {

double CustomMetricDim::InverseMetric(double pscore) const {
  if (pscore <= 0.0) return 0.0;
  double inner_cap = inner_->MaxPScore();
  if (std::isinf(inner_cap)) inner_cap = 1e9;  // practical search ceiling
  if (metric_(inner_cap) <= pscore) return inner_cap;
  double lo = 0.0;
  double hi = inner_cap;
  for (int iter = 0; iter < 64; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (metric_(mid) <= pscore) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace acquire
