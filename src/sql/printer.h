#ifndef ACQUIRE_SQL_PRINTER_H_
#define ACQUIRE_SQL_PRINTER_H_

#include <string>

#include "core/refined_query.h"
#include "exec/acq_task.h"

namespace acquire {

/// Renders the original ACQ of `task` back to SQL (with CONSTRAINT and
/// NOREFINE markers), e.g. for echoing what was planned.
std::string RenderOriginalSql(const AcqTask& task);

/// Renders one recommended refined query as a plain (constraint-free) SQL
/// statement the user can run directly: refined predicates from
/// `refined.description` plus the task's NOREFINE filters.
std::string RenderRefinedSql(const AcqTask& task, const RefinedQuery& refined);

}  // namespace acquire

#endif  // ACQUIRE_SQL_PRINTER_H_
