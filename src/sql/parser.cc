#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace acquire {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstQuery> ParseQuery();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(StringFormat(
        "%s at offset %zu (near '%s')", message.c_str(), Peek().offset,
        Peek().text.c_str()));
  }

  bool PeekIsCompareOp() const {
    const Token& t = Peek();
    return t.IsSymbol("=") || t.IsSymbol("!=") || t.IsSymbol("<") ||
           t.IsSymbol("<=") || t.IsSymbol(">") || t.IsSymbol(">=");
  }

  Result<CompareOp> ParseCompareOp() {
    const Token& t = Peek();
    CompareOp op;
    if (t.IsSymbol("=")) {
      op = CompareOp::kEq;
    } else if (t.IsSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (t.IsSymbol("<")) {
      op = CompareOp::kLt;
    } else if (t.IsSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (t.IsSymbol(">")) {
      op = CompareOp::kGt;
    } else if (t.IsSymbol(">=")) {
      op = CompareOp::kGe;
    } else {
      return Error("expected comparison operator");
    }
    Advance();
    return op;
  }

  Result<std::string> ParseColumnRef() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected column name");
    std::string name = Advance().text;
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected column name after '.'");
      }
      name += "." + Advance().text;
    }
    return name;
  }

  Result<AstLiteral> ParseLiteral() {
    const Token& t = Peek();
    AstLiteral lit;
    if (t.kind == TokenKind::kNumber) {
      lit.is_number = true;
      lit.number = t.number;
      Advance();
      return lit;
    }
    if (t.kind == TokenKind::kString) {
      lit.is_number = false;
      lit.text = t.text;
      Advance();
      return lit;
    }
    return Error("expected literal");
  }

  /// Merges two operands under an arithmetic operator into an expression
  /// operand, concatenating the referenced-column lists.
  static AstOperand Combine(ArithOp op, const AstOperand& lhs,
                            const AstOperand& rhs) {
    AstOperand out;
    out.kind = AstOperand::Kind::kExpr;
    out.expr = Expr::Arith(op, lhs.ToExpr(), rhs.ToExpr());
    out.columns = lhs.columns;
    out.columns.insert(out.columns.end(), rhs.columns.begin(),
                       rhs.columns.end());
    return out;
  }

  // factor := ['-'] (number | string | column | '(' arith ')')
  Result<AstOperand> ParseFactor() {
    if (Peek().IsSymbol("-")) {
      Advance();
      ACQ_ASSIGN_OR_RETURN(AstOperand inner, ParseFactor());
      if (inner.is_literal() && inner.literal.is_number) {
        inner.literal.number = -inner.literal.number;
        return inner;
      }
      AstOperand zero;
      zero.kind = AstOperand::Kind::kLiteral;
      zero.literal.is_number = true;
      zero.literal.number = 0.0;
      return Combine(ArithOp::kSub, zero, inner);
    }
    if (Peek().IsSymbol("(")) {
      Advance();
      ACQ_ASSIGN_OR_RETURN(AstOperand inner, ParseOperand());
      ACQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      // Parenthesized operands are always expression operands so the
      // chained-range detection never misreads them.
      if (!inner.is_expr()) {
        AstOperand wrapped;
        wrapped.kind = AstOperand::Kind::kExpr;
        wrapped.expr = inner.ToExpr();
        wrapped.columns = inner.columns;
        return wrapped;
      }
      return inner;
    }
    if (Peek().kind == TokenKind::kIdent && !Peek().IsKeyword("NOREFINE")) {
      AstOperand operand;
      operand.kind = AstOperand::Kind::kColumn;
      ACQ_ASSIGN_OR_RETURN(operand.column, ParseColumnRef());
      operand.columns = {operand.column};
      return operand;
    }
    AstOperand operand;
    operand.kind = AstOperand::Kind::kLiteral;
    ACQ_ASSIGN_OR_RETURN(operand.literal, ParseLiteral());
    return operand;
  }

  // term := factor (('*' | '/') factor)*
  Result<AstOperand> ParseTerm() {
    ACQ_ASSIGN_OR_RETURN(AstOperand lhs, ParseFactor());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      ArithOp op = Peek().IsSymbol("*") ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      ACQ_ASSIGN_OR_RETURN(AstOperand rhs, ParseFactor());
      lhs = Combine(op, lhs, rhs);
    }
    return lhs;
  }

  // operand := term (('+' | '-') term)*
  Result<AstOperand> ParseOperand() {
    ACQ_ASSIGN_OR_RETURN(AstOperand lhs, ParseTerm());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      ArithOp op = Peek().IsSymbol("+") ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      ACQ_ASSIGN_OR_RETURN(AstOperand rhs, ParseTerm());
      lhs = Combine(op, lhs, rhs);
    }
    return lhs;
  }

  Result<AstPredicate> ParsePredicate();
  Result<AstPredicate> ParsePredicateImpl(bool parenthesized);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<AstPredicate> Parser::ParsePredicate() {
  // A leading '(' is ambiguous: "(a < 10)" wraps the predicate while
  // "(a - b) / 2 < 1" starts an arithmetic operand. Try the predicate
  // reading first and backtrack into the operand reading on failure.
  if (Peek().IsSymbol("(")) {
    const size_t saved = pos_;
    Result<AstPredicate> attempt = ParsePredicateImpl(/*parenthesized=*/true);
    if (attempt.ok()) return attempt;
    pos_ = saved;
  }
  return ParsePredicateImpl(/*parenthesized=*/false);
}

Result<AstPredicate> Parser::ParsePredicateImpl(bool parenthesized) {
  AstPredicate pred;
  if (parenthesized) Advance();  // consume '('

  ACQ_ASSIGN_OR_RETURN(AstOperand first, ParseOperand());

  if (first.is_column() && Peek().IsKeyword("BETWEEN")) {
    Advance();
    ACQ_ASSIGN_OR_RETURN(AstLiteral lo, ParseLiteral());
    ACQ_RETURN_IF_ERROR(ExpectKeyword("AND"));
    ACQ_ASSIGN_OR_RETURN(AstLiteral hi, ParseLiteral());
    if (!lo.is_number || !hi.is_number) {
      return Error("BETWEEN bounds must be numeric");
    }
    pred.kind = AstPredicate::Kind::kBetween;
    pred.column = first.column;
    pred.lo = lo.number;
    pred.hi = hi.number;
  } else if (first.is_column() && Peek().IsKeyword("IN")) {
    Advance();
    ACQ_RETURN_IF_ERROR(ExpectSymbol("("));
    pred.kind = AstPredicate::Kind::kIn;
    pred.column = first.column;
    for (;;) {
      ACQ_ASSIGN_OR_RETURN(AstLiteral lit, ParseLiteral());
      pred.in_list.push_back(std::move(lit));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    ACQ_RETURN_IF_ERROR(ExpectSymbol(")"));
  } else {
    ACQ_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
    ACQ_ASSIGN_OR_RETURN(AstOperand second, ParseOperand());

    if (PeekIsCompareOp()) {
      // Chained range, e.g. "25 <= age <= 35" (query Q1).
      ACQ_ASSIGN_OR_RETURN(CompareOp op2, ParseCompareOp());
      ACQ_ASSIGN_OR_RETURN(AstOperand third, ParseOperand());
      bool ascending = (op == CompareOp::kLe || op == CompareOp::kLt) &&
                       (op2 == CompareOp::kLe || op2 == CompareOp::kLt);
      bool descending = (op == CompareOp::kGe || op == CompareOp::kGt) &&
                        (op2 == CompareOp::kGe || op2 == CompareOp::kGt);
      if (!(ascending || descending) || !second.is_column() ||
          !first.is_literal() || !third.is_literal() ||
          !first.literal.is_number || !third.literal.is_number) {
        return Error("malformed chained range predicate");
      }
      pred.kind = AstPredicate::Kind::kBetween;
      pred.column = second.column;
      pred.lo = ascending ? first.literal.number : third.literal.number;
      pred.hi = ascending ? third.literal.number : first.literal.number;
    } else {
      pred.kind = AstPredicate::Kind::kComparison;
      pred.lhs = std::move(first);
      pred.op = op;
      pred.rhs = std::move(second);
    }
  }

  if (parenthesized) ACQ_RETURN_IF_ERROR(ExpectSymbol(")"));
  if (Peek().IsKeyword("NOREFINE")) {
    Advance();
    pred.norefine = true;
  }
  return pred;
}

Result<AstQuery> Parser::ParseQuery() {
  AstQuery query;
  ACQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  ACQ_RETURN_IF_ERROR(ExpectSymbol("*"));
  ACQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  for (;;) {
    if (Peek().kind != TokenKind::kIdent) return Error("expected table name");
    query.tables.push_back(Advance().text);
    if (Peek().IsSymbol(",")) {
      Advance();
      continue;
    }
    break;
  }

  if (Peek().IsKeyword("CONSTRAINT")) {
    Advance();
    query.has_constraint = true;
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected aggregate function");
    }
    query.agg_function = Advance().text;
    ACQ_RETURN_IF_ERROR(ExpectSymbol("("));
    if (Peek().IsSymbol("*")) {
      Advance();
    } else {
      ACQ_ASSIGN_OR_RETURN(query.agg_column, ParseColumnRef());
    }
    ACQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    ACQ_ASSIGN_OR_RETURN(query.constraint_op, ParseCompareOp());
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected constraint target number");
    }
    query.target = Advance().number;
  }

  if (Peek().IsKeyword("WHERE")) {
    Advance();
    for (;;) {
      ACQ_ASSIGN_OR_RETURN(AstPredicate pred, ParsePredicate());
      query.predicates.push_back(std::move(pred));
      if (Peek().IsKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
  }

  if (Peek().IsSymbol(";")) Advance();
  if (Peek().kind != TokenKind::kEnd) return Error("trailing input");
  return query;
}

}  // namespace

Result<AstQuery> ParseAcqSql(const std::string& sql) {
  ACQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace acquire
