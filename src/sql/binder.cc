#include "sql/binder.h"

#include <optional>

#include "common/string_util.h"
#include "sql/parser.h"

namespace acquire {

namespace {

Result<AggregateKind> AggregateKindFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggregateKind::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggregateKind::kSum;
  if (EqualsIgnoreCase(name, "MIN")) return AggregateKind::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggregateKind::kMax;
  if (EqualsIgnoreCase(name, "AVG")) return AggregateKind::kAvg;
  return AggregateKind::kUda;
}

std::string BareColumnName(const std::string& name) {
  size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

}  // namespace

Result<QuerySpec> Binder::BindQuery(const AstQuery& ast) const {
  QuerySpec spec;
  spec.tables = ast.tables;

  // --- Tables must exist; collect their schemas for column resolution. ---
  std::vector<TablePtr> tables;
  for (const std::string& name : ast.tables) {
    ACQ_ASSIGN_OR_RETURN(TablePtr t, catalog_->GetTable(name));
    tables.push_back(std::move(t));
  }
  auto resolve_table_of = [&](const std::string& column)
      -> Result<std::optional<size_t>> {
    std::optional<size_t> found;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i]->schema().TryFieldIndex(column).has_value()) {
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column reference: " +
                                         column);
        }
        found = i;
      }
    }
    return found;
  };
  auto column_type = [&](size_t table_idx, const std::string& column) {
    const Schema& s = tables[table_idx]->schema();
    return s.field(*s.TryFieldIndex(column)).type;
  };

  // --- Constraint (mandatory in an ACQ). ---
  if (!ast.has_constraint) {
    return Status::InvalidArgument(
        "not an ACQ: missing CONSTRAINT clause (Section 2.1)");
  }
  ACQ_ASSIGN_OR_RETURN(spec.agg_kind, AggregateKindFromName(ast.agg_function));
  if (spec.agg_kind == AggregateKind::kUda) spec.uda_name = ast.agg_function;
  spec.agg_column = ast.agg_column;
  switch (ast.constraint_op) {
    case CompareOp::kEq:
      spec.constraint_op = ConstraintOp::kEq;
      break;
    case CompareOp::kGe:
      spec.constraint_op = ConstraintOp::kGe;
      break;
    case CompareOp::kGt:
      spec.constraint_op = ConstraintOp::kGt;
      break;
    default:
      return Status::Unsupported(
          "CONSTRAINT supports =, >= and > only: this work expands "
          "predicates (Section 2.1); use contraction mode for shrinking");
  }
  spec.target = ast.target;

  // --- Classify the WHERE conjuncts. ---
  for (const AstPredicate& pred : ast.predicates) {
    switch (pred.kind) {
      case AstPredicate::Kind::kBetween: {
        if (pred.norefine) {
          spec.fixed_filters.push_back(Expr::Between(
              Expr::Column(pred.column), Value(pred.lo), Value(pred.hi)));
        } else {
          // Section 2.2: ranges refine as two one-sided predicates.
          spec.predicates.push_back(SelectPredicateSpec{
              pred.column, CompareOp::kGe, pred.lo, true, 1.0, {}});
          spec.predicates.push_back(SelectPredicateSpec{
              pred.column, CompareOp::kLe, pred.hi, true, 1.0, {}});
        }
        break;
      }
      case AstPredicate::Kind::kIn: {
        bool all_strings = true;
        for (const AstLiteral& lit : pred.in_list) {
          all_strings = all_strings && !lit.is_number;
        }
        auto ontology = ontologies_.find(BareColumnName(pred.column));
        if (!pred.norefine && all_strings && ontology != ontologies_.end()) {
          CategoricalPredicateSpec cat;
          cat.column = pred.column;
          for (const AstLiteral& lit : pred.in_list) {
            cat.categories.push_back(lit.text);
          }
          cat.ontology = ontology->second;
          spec.categorical_predicates.push_back(std::move(cat));
          break;
        }
        if (!pred.norefine && strict_categorical_) {
          return Status::Unsupported(
              "refinable IN predicate needs a registered ontology "
              "(Section 7.3): " +
              pred.column);
        }
        std::vector<Value> values;
        for (const AstLiteral& lit : pred.in_list) {
          values.push_back(lit.ToValue());
        }
        spec.fixed_filters.push_back(
            Expr::In(Expr::Column(pred.column), std::move(values)));
        break;
      }
      case AstPredicate::Kind::kComparison: {
        AstOperand lhs = pred.lhs;
        AstOperand rhs = pred.rhs;
        CompareOp op = pred.op;
        if (lhs.is_literal() && !rhs.is_literal()) {
          std::swap(lhs, rhs);
          op = FlipCompareOp(op);
        }
        if (lhs.is_literal()) {
          return Status::InvalidArgument(
              "predicate compares two literals: " +
              lhs.literal.ToValue().ToString());
        }

        // The single table an operand's columns all live in; nullopt when
        // they span several tables.
        auto operand_table = [&](const AstOperand& operand)
            -> Result<std::optional<size_t>> {
          std::optional<size_t> common;
          for (const std::string& column : operand.columns) {
            ACQ_ASSIGN_OR_RETURN(std::optional<size_t> t,
                                 resolve_table_of(column));
            if (!t.has_value()) {
              return Status::NotFound("no such column: " + column);
            }
            if (common.has_value() && *common != *t) {
              return std::optional<size_t>();  // spans tables
            }
            common = t;
          }
          return common;
        };

        if (rhs.is_literal() && rhs.literal.is_number) {
          // <function-or-column> op number.
          if (lhs.is_column()) {
            if (pred.norefine || op == CompareOp::kNe) {
              spec.fixed_filters.push_back(
                  Expr::Compare(op, Expr::Column(lhs.column),
                                Expr::Literal(Value(rhs.literal.number))));
            } else {
              spec.predicates.push_back(SelectPredicateSpec{
                  lhs.column, op, rhs.literal.number, true, 1.0, {}});
            }
          } else {
            if (pred.norefine || op == CompareOp::kNe) {
              spec.fixed_filters.push_back(
                  Expr::Compare(op, lhs.ToExpr(),
                                Expr::Literal(Value(rhs.literal.number))));
            } else {
              spec.expr_predicates.push_back(ExprPredicateSpec{
                  lhs.ToExpr(), op, rhs.literal.number, true, 1.0, {}});
            }
          }
          break;
        }
        if (rhs.is_literal()) {
          // <column> op 'string'.
          if (!lhs.is_column()) {
            return Status::TypeError(
                "string literal compared to an arithmetic expression");
          }
          ACQ_ASSIGN_OR_RETURN(std::optional<size_t> lt,
                               resolve_table_of(lhs.column));
          if (!lt.has_value()) {
            return Status::NotFound("no such column: " + lhs.column);
          }
          if (column_type(*lt, lhs.column) != DataType::kString) {
            return Status::TypeError("string literal compared to non-string "
                                     "column: " +
                                     lhs.column);
          }
          auto ontology = ontologies_.find(BareColumnName(lhs.column));
          if (!pred.norefine && op == CompareOp::kEq &&
              ontology != ontologies_.end()) {
            CategoricalPredicateSpec cat;
            cat.column = lhs.column;
            cat.categories = {rhs.literal.text};
            cat.ontology = ontology->second;
            spec.categorical_predicates.push_back(std::move(cat));
            break;
          }
          if (!pred.norefine && strict_categorical_) {
            return Status::Unsupported(
                "refinable string predicate needs a registered ontology "
                "(Section 7.3): " +
                lhs.column);
          }
          spec.fixed_filters.push_back(
              Expr::Compare(op, Expr::Column(lhs.column),
                            Expr::Literal(Value(rhs.literal.text))));
          break;
        }

        // <function-or-column> op <function-or-column>.
        ACQ_ASSIGN_OR_RETURN(std::optional<size_t> lt, operand_table(lhs));
        ACQ_ASSIGN_OR_RETURN(std::optional<size_t> rt, operand_table(rhs));
        if (!lt.has_value() || !rt.has_value()) {
          // A side spans several tables: only a post-join filter can
          // express it.
          if (!pred.norefine) {
            return Status::Unsupported(
                "a refinable predicate side may reference one table only; "
                "mark the predicate NOREFINE");
          }
          spec.fixed_filters.push_back(
              Expr::Compare(op, lhs.ToExpr(), rhs.ToExpr()));
          break;
        }
        if (op == CompareOp::kNe) {
          if (!pred.norefine) {
            return Status::Unsupported(
                "refinable != predicates are not defined");
          }
          spec.fixed_filters.push_back(
              Expr::Compare(op, lhs.ToExpr(), rhs.ToExpr()));
          break;
        }
        if (*lt == *rt) {
          // Same table: f_l op f_r is the refinable predicate
          // (f_l - f_r) op 0 (Section 2.2's predicate-function form).
          if (pred.norefine) {
            spec.fixed_filters.push_back(
                Expr::Compare(op, lhs.ToExpr(), rhs.ToExpr()));
          } else {
            spec.expr_predicates.push_back(ExprPredicateSpec{
                Expr::Arith(ArithOp::kSub, lhs.ToExpr(), rhs.ToExpr()), op,
                0.0, true, 1.0, {}});
          }
          break;
        }
        // Two tables: a join. Plain column = column keeps the fast
        // hash/band path; anything else is a non-equi join (Section 2.4).
        if (lhs.is_column() && rhs.is_column() && op == CompareOp::kEq) {
          spec.joins.push_back(JoinClauseSpec{lhs.column, rhs.column,
                                              /*refinable=*/!pred.norefine,
                                              0.0, 1.0});
        } else {
          spec.expr_joins.push_back(ExprJoinClauseSpec{
              lhs.ToExpr(), rhs.ToExpr(), op,
              /*refinable=*/!pred.norefine, 0.0, 1.0});
        }
        break;
      }
    }
  }
  return spec;
}

Result<AcqTask> Binder::PlanSql(const std::string& sql) const {
  ACQ_ASSIGN_OR_RETURN(AstQuery ast, ParseAcqSql(sql));
  ACQ_ASSIGN_OR_RETURN(QuerySpec spec, BindQuery(ast));
  return PlanAcqTask(*catalog_, spec);
}

}  // namespace acquire
