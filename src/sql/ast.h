#ifndef ACQUIRE_SQL_AST_H_
#define ACQUIRE_SQL_AST_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/value.h"

namespace acquire {

/// A literal in the WHERE clause: a number (K/M/B suffix resolved) or a
/// string.
struct AstLiteral {
  bool is_number = true;
  double number = 0.0;
  std::string text;  // string body when !is_number

  Value ToValue() const {
    return is_number ? Value(number) : Value(text);
  }
};

/// A comparison operand: a column reference, a literal, or an arithmetic
/// expression over columns and literals (Section 2.2's predicate
/// functions, e.g. "2 * a.x").
struct AstOperand {
  enum class Kind { kColumn, kLiteral, kExpr };
  Kind kind = Kind::kLiteral;
  std::string column;  // kColumn: possibly qualified ("supplier.s_acctbal")
  AstLiteral literal;  // kLiteral
  ExprPtr expr;        // kExpr: the built arithmetic expression
  /// Every column referenced (kColumn: just `column`; kExpr: all of them).
  std::vector<std::string> columns;

  bool is_column() const { return kind == Kind::kColumn; }
  bool is_literal() const { return kind == Kind::kLiteral; }
  bool is_expr() const { return kind == Kind::kExpr; }

  /// Lowers any operand to an expression tree.
  ExprPtr ToExpr() const {
    switch (kind) {
      case Kind::kColumn:
        return Expr::Column(column);
      case Kind::kLiteral:
        return Expr::Literal(literal.ToValue());
      case Kind::kExpr:
        return expr;
    }
    return nullptr;
  }
};

/// One WHERE-clause conjunct.
struct AstPredicate {
  enum class Kind { kComparison, kBetween, kIn };
  Kind kind = Kind::kComparison;

  // kComparison
  AstOperand lhs;
  CompareOp op = CompareOp::kEq;
  AstOperand rhs;

  // kBetween ("lo <= col <= hi" chains are normalized to this form too)
  std::string column;
  double lo = 0.0;
  double hi = 0.0;

  // kIn
  std::vector<AstLiteral> in_list;

  bool norefine = false;
};

/// A parsed ACQ: SELECT * FROM tables [CONSTRAINT AGG(col) op X]
/// [WHERE p1 AND p2 ...].
struct AstQuery {
  std::vector<std::string> tables;

  bool has_constraint = false;
  std::string agg_function;  // COUNT / SUM / ... / UDA name, as written
  std::string agg_column;    // empty for '*'
  CompareOp constraint_op = CompareOp::kEq;
  double target = 0.0;

  std::vector<AstPredicate> predicates;
};

}  // namespace acquire

#endif  // ACQUIRE_SQL_AST_H_
