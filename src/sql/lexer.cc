#include "sql/lexer.h"

#include <cctype>
#include <cstring>

#include "common/string_util.h"

namespace acquire {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;

    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident_char(input[i])) ++i;
      token.kind = TokenKind::kIdent;
      token.text = input.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      // Magnitude suffix (K/M/B) must not be followed by more identifier
      // characters — that would be an identifier like "10Mx".
      if (i < n && strchr("kKmMbB", input[i]) != nullptr &&
          (i + 1 >= n || !is_ident_char(input[i + 1]))) {
        ++i;
      }
      std::string text = input.substr(start, i - start);
      auto value = ParseNumberWithSuffix(text);
      if (!value.ok()) {
        return Status::ParseError(StringFormat(
            "bad numeric literal '%s' at offset %zu", text.c_str(), start));
      }
      token.kind = TokenKind::kNumber;
      token.text = std::move(text);
      token.number = value.value();
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += input[i++];
      }
      if (!closed) {
        return Status::ParseError(StringFormat(
            "unterminated string literal at offset %zu", token.offset));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(body);
      tokens.push_back(std::move(token));
      continue;
    }

    // Multi-character operators first.
    auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
      token.kind = TokenKind::kSymbol;
      token.text = two == "<>" ? "!=" : two;
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (strchr(",().*=<>;+-/", c) != nullptr) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    return Status::ParseError(
        StringFormat("unexpected character '%c' at offset %zu", c, i));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace acquire
