#ifndef ACQUIRE_SQL_LEXER_H_
#define ACQUIRE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace acquire {

enum class TokenKind {
  kIdent,    // bare identifiers and keywords (keyword check is by text)
  kNumber,   // numeric literal, K/M/B magnitude suffix already applied
  kString,   // 'single quoted'
  kSymbol,   // punctuation / operators: , ( ) . * = != <> < <= > >= ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier text / operator spelling / string body
  double number = 0.0;  // kNumber only
  size_t offset = 0;    // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Tokenizes an ACQ-SQL string. Keywords are case-insensitive; numeric
/// literals accept the paper's K/M/B shorthand ("COUNT(*) = 1M").
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace acquire

#endif  // ACQUIRE_SQL_LEXER_H_
