#include "sql/printer.h"

#include "common/string_util.h"

namespace acquire {

namespace {

std::string FromClause(const AcqTask& task) {
  if (!task.table_names.empty()) return Join(task.table_names, ", ");
  return task.relation->name();
}

}  // namespace

std::string RenderOriginalSql(const AcqTask& task) {
  std::vector<std::string> preds;
  for (const RefinementDimPtr& dim : task.dims) {
    preds.push_back(dim->label());
  }
  for (const std::string& fixed : task.fixed_predicate_labels) {
    preds.push_back(fixed + " NOREFINE");
  }
  std::string sql = "SELECT * FROM " + FromClause(task);
  sql += "\nCONSTRAINT " + task.agg.ToString() + " " +
         task.constraint.ToString();
  if (!preds.empty()) sql += "\nWHERE " + Join(preds, " AND ");
  return sql + ";";
}

std::string RenderRefinedSql(const AcqTask& task,
                             const RefinedQuery& refined) {
  std::vector<std::string> preds;
  if (!refined.description.empty()) preds.push_back(refined.description);
  preds.insert(preds.end(), task.fixed_predicate_labels.begin(),
               task.fixed_predicate_labels.end());
  std::string sql = "SELECT * FROM " + FromClause(task);
  if (!preds.empty()) sql += "\nWHERE " + Join(preds, " AND ");
  return sql + ";";
}

}  // namespace acquire
