#ifndef ACQUIRE_SQL_BINDER_H_
#define ACQUIRE_SQL_BINDER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "exec/planner.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace acquire {

/// Lowers a parsed ACQ into the planner's QuerySpec, classifying each WHERE
/// conjunct:
///   * column-vs-number comparisons -> refinable select predicates
///     (NOREFINE -> fixed filters); ranges split into two one-sided
///     predicates (Section 2.2);
///   * cross-table column = column -> join clauses, refinable by default
///     (Section 2.4), NOREFINE -> exact hash joins;
///   * IN lists / string equality -> ontology-refinable categorical
///     predicates when an ontology is registered for the column
///     (Section 7.3), otherwise fixed filters.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Enables refinable categorical predicates on `column` (bare name).
  /// The tree must outlive every task planned through this binder.
  void RegisterOntology(const std::string& column, const OntologyTree* tree) {
    ontologies_[column] = tree;
  }

  /// When true, a refinable string predicate on a column without a
  /// registered ontology is an error; when false (default) it silently
  /// degrades to a fixed (NOREFINE) filter, which is what the paper's Q1
  /// does for location/interests before ontologies enter the picture.
  void set_strict_categorical(bool strict) { strict_categorical_ = strict; }

  Result<QuerySpec> BindQuery(const AstQuery& ast) const;

  /// Parse + bind + plan in one call.
  Result<AcqTask> PlanSql(const std::string& sql) const;

 private:
  const Catalog* catalog_;
  std::map<std::string, const OntologyTree*> ontologies_;
  bool strict_categorical_ = false;
};

}  // namespace acquire

#endif  // ACQUIRE_SQL_BINDER_H_
