#ifndef ACQUIRE_SQL_EXPLAIN_H_
#define ACQUIRE_SQL_EXPLAIN_H_

#include <string>

#include "core/acquire.h"
#include "exec/acq_task.h"

namespace acquire {

/// EXPLAIN-style description of a planned ACQ: the base relation, every
/// refinement dimension with its domain cap and weight, the fixed
/// (NOREFINE) predicates folded into the relation, the aggregate
/// constraint, and the refined-space geometry the given options imply
/// (step size, per-dimension level counts).
std::string ExplainTask(const AcqTask& task,
                        const AcquireOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_SQL_EXPLAIN_H_
