#ifndef ACQUIRE_SQL_PARSER_H_
#define ACQUIRE_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace acquire {

/// Parses the paper's ACQ SQL extension (Section 2.1):
///
///   SELECT * FROM t1 [, t2 ...]
///   [CONSTRAINT AGG(col | *) (= | >= | >) number]
///   [WHERE pred [NOREFINE] [AND pred [NOREFINE] ...]]
///
/// where pred is one of
///   operand (= | != | < | <= | > | >=) operand
///   lo <= column <= hi            (chained range, as in query Q1)
///   column BETWEEN lo AND hi
///   column IN (lit1, lit2, ...)
///
/// and numeric literals accept K/M/B magnitude suffixes ("COUNT(*) = 1M").
Result<AstQuery> ParseAcqSql(const std::string& sql);

}  // namespace acquire

#endif  // ACQUIRE_SQL_PARSER_H_
