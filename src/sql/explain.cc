#include "sql/explain.h"

#include <cmath>

#include "common/string_util.h"
#include "core/refined_space.h"

namespace acquire {

std::string ExplainTask(const AcqTask& task, const AcquireOptions& options) {
  std::string out;
  out += StringFormat("ACQ plan\n  base relation: %s (%zu rows, %zu cols)\n",
                      task.relation->name().c_str(),
                      task.relation->num_rows(),
                      task.relation->num_columns());
  out += StringFormat("  constraint: %s %s\n", task.agg.ToString().c_str(),
                      task.constraint.ToString().c_str());
  if (!task.fixed_predicate_labels.empty()) {
    out += "  fixed (NOREFINE) predicates:\n";
    for (const std::string& label : task.fixed_predicate_labels) {
      out += "    " + label + "\n";
    }
  }
  RefinedSpace space(&task, options.gamma, options.norm);
  out += StringFormat(
      "  refined space: d=%zu, norm=%s, gamma=%g, step=%g (Theorem 1)\n",
      task.d(), options.norm.ToString().c_str(), options.gamma,
      space.step());
  for (size_t i = 0; i < task.d(); ++i) {
    const RefinementDim& dim = *task.dims[i];
    double cap = dim.MaxPScore();
    out += StringFormat(
        "    dim %zu: %s  [max refinement %s, %d grid levels, weight %g]\n",
        i, dim.label().c_str(),
        std::isinf(cap) ? "unbounded" : StringFormat("%.4g", cap).c_str(),
        space.MaxLevel(i), dim.weight());
  }
  return out;
}

}  // namespace acquire
