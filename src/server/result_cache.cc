#include "server/result_cache.h"

#include <utility>

#include "sql/printer.h"

namespace acquire {

namespace {

JsonValue RefinedQueryToJson(const AcqTask* task, const RefinedQuery& query) {
  JsonValue out = JsonValue::Object();
  if (task != nullptr) {
    out.Set("sql", JsonValue::Str(RenderRefinedSql(*task, query)));
  }
  out.Set("predicates", JsonValue::Str(query.description));
  out.Set("aggregate", JsonValue::Number(query.aggregate));
  out.Set("qscore", JsonValue::Number(query.qscore));
  out.Set("error", JsonValue::Number(query.error));
  return out;
}

}  // namespace

JsonValue BuildReportJson(const AcqOutcome& outcome, const AcqTask* task,
                          double wall_ms) {
  const AcquireResult& result = outcome.result;
  // Contracted runs express their answers in the contraction task's
  // dimensions; render against that task so the SQL is runnable.
  const AcqTask* display_task = outcome.mode == AcqMode::kContracted
                                    ? outcome.contraction_task.get()
                                    : task;
  JsonValue report = JsonValue::Object();
  report.Set("mode", JsonValue::Str(AcqModeToString(outcome.mode)));
  report.Set("termination",
             JsonValue::Str(RunTerminationToString(result.termination)));
  report.Set("satisfied", JsonValue::Bool(result.satisfied));
  report.Set("original_aggregate",
             JsonValue::Number(outcome.original_aggregate));
  report.Set("best", RefinedQueryToJson(display_task, result.best));
  JsonValue answers = JsonValue::Array();
  for (const RefinedQuery& query : result.queries) {
    answers.Append(RefinedQueryToJson(display_task, query));
  }
  report.Set("answers", std::move(answers));
  report.Set("queries_explored",
             JsonValue::Number(static_cast<double>(result.queries_explored)));
  report.Set("cell_queries",
             JsonValue::Number(static_cast<double>(result.cell_queries)));
  report.Set("elapsed_ms", JsonValue::Number(result.elapsed_ms));
  report.Set("wall_ms", JsonValue::Number(wall_ms));
  return report;
}

ResultCache::ResultCache(uint64_t limit_bytes) : limit_(limit_bytes) {}

void ResultCache::set_limit_bytes(uint64_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
  if (bytes == 0) {
    Clear();
    return;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictLocked(&shard);
  }
}

CachedResultPtr ResultCache::Lookup(const TaskFingerprint& fp) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(fp);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->result;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ResultCache::Insert(const TaskFingerprint& fp, CachedResultPtr result) {
  if (!enabled() || result == nullptr) return;
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fp);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->result->bytes;
    shard.bytes += result->bytes;
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.bytes += result->bytes;
    shard.lru.push_front(Entry{fp, std::move(result)});
    shard.index.emplace(fp, shard.lru.begin());
  }
  EvictLocked(&shard);
}

void ResultCache::EvictLocked(Shard* shard) {
  const uint64_t shard_limit =
      limit_.load(std::memory_order_relaxed) / kShards;
  while (!shard->lru.empty() && shard->bytes > shard_limit) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.result->bytes;
    shard->index.erase(victim.fp);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.limit_bytes = limit_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace acquire
