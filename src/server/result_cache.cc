#include "server/result_cache.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "sql/printer.h"
#include "storage/wal.h"

namespace acquire {

namespace {

JsonValue RefinedQueryToJson(const AcqTask* task, const RefinedQuery& query) {
  JsonValue out = JsonValue::Object();
  if (task != nullptr) {
    out.Set("sql", JsonValue::Str(RenderRefinedSql(*task, query)));
  }
  out.Set("predicates", JsonValue::Str(query.description));
  out.Set("aggregate", JsonValue::Number(query.aggregate));
  out.Set("qscore", JsonValue::Number(query.qscore));
  out.Set("error", JsonValue::Number(query.error));
  return out;
}

}  // namespace

JsonValue BuildReportJson(const AcqOutcome& outcome, const AcqTask* task,
                          double wall_ms) {
  const AcquireResult& result = outcome.result;
  // Contracted runs express their answers in the contraction task's
  // dimensions; render against that task so the SQL is runnable.
  const AcqTask* display_task = outcome.mode == AcqMode::kContracted
                                    ? outcome.contraction_task.get()
                                    : task;
  JsonValue report = JsonValue::Object();
  report.Set("mode", JsonValue::Str(AcqModeToString(outcome.mode)));
  report.Set("termination",
             JsonValue::Str(RunTerminationToString(result.termination)));
  report.Set("satisfied", JsonValue::Bool(result.satisfied));
  report.Set("original_aggregate",
             JsonValue::Number(outcome.original_aggregate));
  report.Set("best", RefinedQueryToJson(display_task, result.best));
  JsonValue answers = JsonValue::Array();
  for (const RefinedQuery& query : result.queries) {
    answers.Append(RefinedQueryToJson(display_task, query));
  }
  report.Set("answers", std::move(answers));
  report.Set("queries_explored",
             JsonValue::Number(static_cast<double>(result.queries_explored)));
  report.Set("cell_queries",
             JsonValue::Number(static_cast<double>(result.cell_queries)));
  report.Set("elapsed_ms", JsonValue::Number(result.elapsed_ms));
  report.Set("wall_ms", JsonValue::Number(wall_ms));
  return report;
}

ResultCache::ResultCache(uint64_t limit_bytes) : limit_(limit_bytes) {}

void ResultCache::set_limit_bytes(uint64_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
  if (bytes == 0) {
    Clear();
    return;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictLocked(&shard);
  }
}

double ResultCache::PriorityOf(const Shard& shard, const CachedResult& result,
                               uint64_t freq) {
  // GreedyDual-Size-Frequency: benefit of keeping the entry (cost to
  // recompute, amortized over its size, scaled by how often it actually
  // hits) on top of the shard clock. Zero-cost entries collapse to the
  // clock, i.e. plain LRU via the recency-list tiebreak.
  const double size =
      static_cast<double>(result.bytes > 0 ? result.bytes : 1);
  return shard.clock + result.cost_ms * static_cast<double>(freq) / size;
}

CachedResultPtr ResultCache::Lookup(const TaskFingerprint& fp) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(fp);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      ++entry.freq;
      entry.priority = PriorityOf(shard, *entry.result, entry.freq);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return entry.result;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ResultCache::Insert(const TaskFingerprint& fp, CachedResultPtr result) {
  if (!enabled() || result == nullptr) return;
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fp);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    shard.bytes -= entry.result->bytes;
    shard.bytes += result->bytes;
    entry.result = std::move(result);
    ++entry.freq;
    entry.priority = PriorityOf(shard, *entry.result, entry.freq);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.bytes += result->bytes;
    Entry entry{fp, std::move(result)};
    entry.priority = PriorityOf(shard, *entry.result, entry.freq);
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(fp, shard.lru.begin());
  }
  EvictLocked(&shard);
}

void ResultCache::EvictLocked(Shard* shard) {
  const uint64_t shard_limit =
      limit_.load(std::memory_order_relaxed) / kShards;
  while (!shard->lru.empty() && shard->bytes > shard_limit) {
    // Minimum-priority victim; scanning from the tail makes ties resolve
    // to the least recently used entry. Result caches hold few, large
    // entries, so the linear scan is noise next to what they cache.
    auto victim = std::prev(shard->lru.end());
    for (auto it = shard->lru.end(); it != shard->lru.begin();) {
      --it;
      if (it->priority < victim->priority) victim = it;
    }
    // The clock inherits the victim's priority: entries untouched since
    // long-ago cheap eras age out against newly inserted ones.
    shard->clock = std::max(shard->clock, victim->priority);
    shard->bytes -= victim->result->bytes;
    shard->index.erase(victim->fp);
    shard->lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::RecordFailure(uint64_t key, const Status& error) {
  if (!enabled() || error.ok()) return;
  std::lock_guard<std::mutex> lock(negative_mu_);
  auto it = negative_.find(key);
  if (it == negative_.end()) {
    if (negative_.size() >= kMaxNegativeEntries) {
      negative_.erase(negative_.begin());  // arbitrary victim; table is tiny
    }
    negative_.emplace(key, NegativeEntry{error, 1});
    return;
  }
  if (it->second.error.code() != error.code()) {
    it->second = NegativeEntry{error, 1};  // failure mode moved: restart
    return;
  }
  it->second.error = error;
  ++it->second.failures;
}

bool ResultCache::LookupFailure(uint64_t key, Status* error) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(negative_mu_);
  auto it = negative_.find(key);
  if (it == negative_.end() || it->second.failures < kNegativeThreshold) {
    return false;
  }
  *error = it->second.error;
  negative_hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.clock = 0.0;
  }
  std::lock_guard<std::mutex> lock(negative_mu_);
  negative_.clear();
}

namespace {
constexpr const char kCacheFileHeader[] = "acq-cache-v2";
constexpr const char kCacheCrcPrefix[] = "crc ";
}  // namespace

Status ResultCache::SaveToFile(const std::string& path) const {
  // The whole snapshot is staged in memory, sealed with a CRC over the
  // body, and published via temp-file + fsync + rename: a crash mid-save
  // leaves either the previous snapshot or none, never a torn file that a
  // later start would half-load.
  std::string body;
  // Two lines per entry: a metadata line of exact decimal u64 fields (JSON
  // numbers are doubles and would corrupt 64-bit fingerprints), then the
  // report re-dumped — Dump() is single-line by contract, so the format
  // stays newline-framed.
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& entry : shard.lru) {
      const CachedResult& r = *entry.result;
      char meta[256];
      std::snprintf(meta, sizeof(meta),
                    "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                    " %" PRIu64 " %zu %.17g",
                    entry.fp.hi, entry.fp.lo, r.generation,
                    r.queries_explored, r.cell_queries, r.bytes, r.cost_ms);
      body += meta;
      body += '\n';
      body += r.report.Dump();
      body += '\n';
    }
  }
  std::string contents = kCacheFileHeader;
  contents += '\n';
  contents += body;
  contents += StringFormat("%s%08x\n", kCacheCrcPrefix,
                           Crc32c(body.data(), body.size()));
  return AtomicWriteFile(path, contents);
}

Status ResultCache::LoadFromFile(const std::string& path,
                                 uint64_t current_generation, size_t* loaded,
                                 size_t* dropped) {
  if (loaded != nullptr) *loaded = 0;
  if (dropped != nullptr) *dropped = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StringFormat("no cache file at %s", path.c_str()));
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (!in && !in.eof()) {
    return Status::IOError(
        StringFormat("cannot read cache file %s", path.c_str()));
  }
  // Verify the frame before touching a single entry: header line first,
  // trailing "crc %08x" line last, checksum over everything in between.
  const std::string header_line = std::string(kCacheFileHeader) + "\n";
  if (contents.compare(0, header_line.size(), header_line) != 0) {
    return Status::ParseError(StringFormat(
        "cache file %s: missing '%s' header", path.c_str(),
        kCacheFileHeader));
  }
  if (contents.empty() || contents.back() != '\n') {
    return Status::ParseError(StringFormat(
        "cache file %s: truncated (no trailing checksum line)",
        path.c_str()));
  }
  const size_t prev_newline = contents.rfind('\n', contents.size() - 2);
  const size_t crc_line_start =
      prev_newline == std::string::npos ? header_line.size()
                                        : prev_newline + 1;
  const std::string crc_line =
      contents.substr(crc_line_start, contents.size() - crc_line_start);
  unsigned int stored_crc = 0;
  if (crc_line.compare(0, std::strlen(kCacheCrcPrefix), kCacheCrcPrefix) !=
          0 ||
      std::sscanf(crc_line.c_str() + std::strlen(kCacheCrcPrefix), "%8x",
                  &stored_crc) != 1) {
    return Status::ParseError(StringFormat(
        "cache file %s: truncated (no trailing checksum line)",
        path.c_str()));
  }
  const char* body_begin = contents.data() + header_line.size();
  const size_t body_size = crc_line_start - header_line.size();
  const uint32_t actual_crc = Crc32c(body_begin, body_size);
  if (actual_crc != static_cast<uint32_t>(stored_crc)) {
    return Status::ParseError(StringFormat(
        "cache file %s: checksum mismatch (stored %08x, computed %08x) — "
        "torn or corrupted snapshot rejected",
        path.c_str(), stored_crc, actual_crc));
  }
  std::istringstream body_in(std::string(body_begin, body_size));
  std::string line;
  size_t entry_no = 0;
  while (std::getline(body_in, line)) {
    if (line.empty()) continue;
    ++entry_no;
    TaskFingerprint fp;
    auto result = std::make_shared<CachedResult>();
    unsigned long long hi = 0, lo = 0, gen = 0, explored = 0, cells = 0,
                       bytes = 0;
    double cost_ms = 0.0;
    if (std::sscanf(line.c_str(), "%llu %llu %llu %llu %llu %llu %lg", &hi,
                    &lo, &gen, &explored, &cells, &bytes, &cost_ms) != 7) {
      return Status::ParseError(StringFormat(
          "cache file %s entry %zu: bad metadata line", path.c_str(),
          entry_no));
    }
    std::string report_line;
    if (!std::getline(body_in, report_line)) {
      return Status::ParseError(StringFormat(
          "cache file %s entry %zu: truncated (metadata without report)",
          path.c_str(), entry_no));
    }
    Result<JsonValue> report = JsonValue::Parse(report_line);
    if (!report.ok()) {
      return Status::ParseError(StringFormat(
          "cache file %s entry %zu: %s", path.c_str(), entry_no,
          report.status().message().c_str()));
    }
    if (static_cast<uint64_t>(gen) != current_generation) {
      // The catalog moved on since this snapshot: the fingerprint can never
      // be recomputed by a live submit, so the entry would only waste bytes.
      if (dropped != nullptr) ++(*dropped);
      continue;
    }
    fp.hi = static_cast<uint64_t>(hi);
    fp.lo = static_cast<uint64_t>(lo);
    result->report = std::move(*report);
    result->queries_explored = static_cast<uint64_t>(explored);
    result->cell_queries = static_cast<uint64_t>(cells);
    result->bytes = static_cast<size_t>(bytes);
    result->cost_ms = cost_ms;
    result->generation = static_cast<uint64_t>(gen);
    Insert(fp, std::move(result));
    if (loaded != nullptr) ++(*loaded);
  }
  return Status::OK();
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.limit_bytes = limit_.load(std::memory_order_relaxed);
  stats.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  {
    std::lock_guard<std::mutex> lock(negative_mu_);
    stats.negative_entries = negative_.size();
  }
  return stats;
}

}  // namespace acquire
