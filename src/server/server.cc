#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/processor.h"
#include "exec/thread_pool.h"
#include "server/result_cache.h"

namespace acquire {

namespace {

JsonValue ErrorResponse(const Status& status) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("code", JsonValue::Str(StatusCodeToString(status.code())));
  response.Set("error", JsonValue::Str(status.message()));
  return response;
}

JsonValue ErrorResponse(Status (*factory)(std::string), std::string message) {
  return ErrorResponse(factory(std::move(message)));
}

Result<SearchOrder> ParseOrder(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "auto") return SearchOrder::kAuto;
  if (lower == "bfs") return SearchOrder::kBfs;
  if (lower == "shell") return SearchOrder::kShell;
  if (lower == "best_first" || lower == "best-first") {
    return SearchOrder::kBestFirst;
  }
  return Status::InvalidArgument(
      StringFormat("unknown order '%s' (auto|bfs|shell|best_first)",
                   name.c_str()));
}

/// The terminal (or in-flight) state of one session as a protocol object.
JsonValue SessionToJson(const Session& session) {
  const Session::View view = session.Snapshot();
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("id", JsonValue::Str(session.id()));
  out.Set("state", JsonValue::Str(SessionStateToString(view.state)));
  out.Set("queries_explored",
          JsonValue::Number(static_cast<double>(view.queries_explored)));
  out.Set("cell_queries",
          JsonValue::Number(static_cast<double>(view.cell_queries)));
  if (view.state == SessionState::kFailed) {
    out.Set("code", JsonValue::Str(StatusCodeToString(view.error.code())));
    out.Set("error", JsonValue::Str(view.error.message()));
    return out;
  }
  // Cache-served sessions (and the seeding leader itself) reply with the
  // report rendered once at the leader's completion — byte-identical across
  // every hit; only the outer "id" differs.
  if (view.cached != nullptr) {
    out.Set("report", JsonValue(view.cached->report));
    return out;
  }
  if (!view.has_outcome) return out;
  out.Set("report", BuildReportJson(view.outcome, view.task.get(),
                                    view.wall_ms));
  return out;
}

/// One PROGRESS frame as a protocol line. "progress":true is the frame
/// marker clients key on (the terminal reply carries "ok" instead, never
/// "progress"), so the two line kinds can never be confused. The governor
/// object reports the session's *own tenant* admission state — its active
/// slots, its slot limit, its carved memory share — plus the tenant's
/// running/queued depth, never the global pool's totals.
JsonValue ProgressFrameJson(const Session& session,
                            const ProgressSnapshot& snap,
                            const std::string& tenant_id,
                            SessionManager* manager,
                            ResourceGovernor* governor) {
  JsonValue frame = JsonValue::Object();
  frame.Set("progress", JsonValue::Bool(true));
  frame.Set("id", JsonValue::Str(session.id()));
  frame.Set("tenant", JsonValue::Str(tenant_id));
  auto num = [](uint64_t v) {
    return JsonValue::Number(static_cast<double>(v));
  };
  frame.Set("layers_drained", num(snap.layers_drained));
  frame.Set("queries_explored", num(snap.queries_explored));
  frame.Set("cell_queries", num(snap.cell_queries));
  frame.Set("elapsed_ms", JsonValue::Number(snap.elapsed_ms));
  if (snap.has_best) {
    JsonValue best = JsonValue::Object();
    best.Set("qscore", JsonValue::Number(snap.best_qscore));
    best.Set("aggregate", JsonValue::Number(snap.best_aggregate));
    best.Set("error", JsonValue::Number(snap.best_error));
    best.Set("refined", JsonValue::Str(snap.best_description));
    frame.Set("best", std::move(best));
  } else {
    frame.Set("best", JsonValue::Null());
  }
  frame.Set("eval_queries", num(snap.eval_queries));
  frame.Set("tuples_scanned", num(snap.tuples_scanned));
  frame.Set("prepare_ms", JsonValue::Number(snap.prepare_ms));
  frame.Set("delta_rows", num(snap.delta_rows));
  frame.Set("delta_merges", num(snap.delta_merges));
  JsonValue merges = JsonValue::Object();
  merges.Set("central", num(snap.merge_layers_central));
  merges.Set("tree", num(snap.merge_layers_tree));
  merges.Set("radix", num(snap.merge_layers_radix));
  merges.Set("sequential", num(snap.merge_layers_sequential));
  frame.Set("merge_layers", std::move(merges));
  JsonValue gov = JsonValue::Object();
  ResourceGovernor::TenantUsage usage;
  if (governor->Usage(manager, &usage)) {
    gov.Set("active_slots", num(usage.active_slots));
    gov.Set("slot_limit", num(usage.slot_limit));
    gov.Set("memory_share_bytes", num(usage.memory_share_bytes));
  }
  gov.Set("running", num(manager->num_running()));
  gov.Set("queued", num(manager->num_queued()));
  frame.Set("governor", std::move(gov));
  return frame;
}

/// Suppresses SIGPIPE for writes to `fd`, in preference order: per-call
/// MSG_NOSIGNAL (Linux), per-socket SO_NOSIGPIPE (BSD/macOS), and a
/// process-wide SIGPIPE ignore as the last resort — a dead peer must
/// surface as an EPIPE errno, never as a process-killing signal.
void SuppressSigpipe(int fd) {
#ifdef MSG_NOSIGNAL
  (void)fd;  // handled per send() call
#elif defined(SO_NOSIGPIPE)
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
  ::signal(SIGPIPE, SIG_IGN);
#endif
}

bool SendAll(int fd, const std::string& data, int* error_out) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (error_out != nullptr) *error_out = n < 0 ? errno : EPIPE;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

namespace {

ResourceGovernor::Options GovernorOptions(const ServerOptions& options) {
  ResourceGovernor::Options governor;
  // The global slot pool matches the historical single-tenant max_running
  // resolution, so attaching tenants shares the same process-wide
  // concurrency instead of multiplying it.
  governor.total_run_slots = options.max_running;
  governor.global_memory_budget_bytes = options.global_memory_budget_bytes;
  return governor;
}

SessionManagerOptions BaseManagerOptions(const ServerOptions& options) {
  SessionManagerOptions manager;
  manager.max_running = options.max_running;
  manager.max_queued = options.max_queued;
  manager.cache_bytes = options.cache_bytes;
  return manager;
}

/// Never fails and never returns null: an unopenable wal_dir degrades to a
/// disabled instance (stderr-noted) rather than refusing to serve.
std::unique_ptr<ServerDurability> OpenDurability(const ServerOptions& options) {
  DurabilityOptions durability;
  durability.dir = options.wal_dir;
  durability.fsync = options.fsync;
  durability.checkpoint_interval_appends = options.checkpoint_interval_appends;
  Result<std::unique_ptr<ServerDurability>> opened =
      ServerDurability::Open(std::move(durability));
  if (opened.ok()) return std::move(*opened);
  std::fprintf(stderr, "durability disabled (wal_dir '%s'): %s\n",
               options.wal_dir.c_str(), opened.status().ToString().c_str());
  Result<std::unique_ptr<ServerDurability>> disabled =
      ServerDurability::Open(DurabilityOptions{});
  return std::move(*disabled);
}

}  // namespace

AcqServer::AcqServer(const Catalog* catalog, ServerOptions options)
    : options_(options),
      governor_(GovernorOptions(options)),
      durability_(OpenDurability(options)),
      registry_(&governor_, BaseManagerOptions(options), durability_.get()),
      default_tenant_(registry_.AdoptDefault(catalog)) {
  RecoverTenants();
}

AcqServer::AcqServer(Catalog* catalog, ServerOptions options)
    : options_(options),
      governor_(GovernorOptions(options)),
      durability_(OpenDurability(options)),
      registry_(&governor_, BaseManagerOptions(options), durability_.get()),
      default_tenant_(registry_.AdoptDefault(catalog)) {
  RecoverTenants();
}

void AcqServer::RecoverTenants() {
  if (!durability_->enabled()) return;
  // Re-attach every tenant the manifest records as live. Each rebuilds its
  // base catalog from the logged load params, then recovers its checkpoint
  // and WAL on top. A tenant that fails (e.g. its loaddb directory is gone)
  // is noted and skipped — the rest of the server still starts.
  for (const AttachParams& params : durability_->recovered_tenants()) {
    Result<TenantPtr> attached = registry_.Attach(params,
                                                  /*from_recovery=*/true);
    if (!attached.ok()) {
      std::fprintf(stderr, "recovery: re-attach of tenant '%s' failed: %s\n",
                   params.id.c_str(), attached.status().ToString().c_str());
    }
  }
}

AcqServer::~AcqServer() { Stop(); }

Status AcqServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StringFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(
        StringFormat("bind 127.0.0.1:%d: %s", options_.port,
                     std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status =
        Status::IOError(StringFormat("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  started_ = true;
  accept_thread_ = std::thread(&AcqServer::AcceptLoop, this);
  return Status::OK();
}

void AcqServer::Drain(double timeout_ms) {
  {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) return;
    stopping_.store(true);
    if (listen_fd_ >= 0) {
      // No new connections; existing ones keep being served until Stop().
      ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  for (;;) {
    size_t in_flight = 0;
    for (const TenantPtr& tenant : registry_.List()) {
      in_flight +=
          tenant->manager().num_running() + tenant->manager().num_queued();
    }
    if (in_flight == 0) return;
    if (std::chrono::steady_clock::now() >= deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void AcqServer::Stop() {
  // Serializes concurrent/repeat Stop calls (e.g. the destructor after an
  // explicit Stop): the second caller waits for the first to finish joining
  // and then returns.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // Unblocks accept(); the listening fd is closed after the join.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& thread : conn_threads_) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain every tenant (connection threads are already joined, so no new
  // submissions can race the shutdowns). Deregistration from the governor
  // happens in the registry destructor.
  for (const TenantPtr& tenant : registry_.List()) {
    tenant->manager().Shutdown();
  }
  // Clean shutdown checkpoints each durable tenant: restart then recovers
  // from the snapshot alone, with an empty WAL. A checkpoint that fails
  // falls back to flushing the log — the WAL already holds everything.
  for (const TenantPtr& tenant : registry_.List()) {
    TenantDurability* durability = tenant->durability();
    if (durability == nullptr) continue;
    Status status = durability->Checkpoint(tenant->manager().catalog());
    if (!status.ok()) {
      std::fprintf(stderr, "shutdown checkpoint for '%s' failed: %s\n",
                   tenant->id().c_str(), status.ToString().c_str());
      status = durability->Flush();
      if (!status.ok()) {
        std::fprintf(stderr, "shutdown flush for '%s' failed: %s\n",
                     tenant->id().c_str(), status.ToString().c_str());
      }
    }
  }
}

void AcqServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&AcqServer::ServeConnection, this, slot, fd);
  }
}

bool AcqServer::SendLine(int fd, const std::string& line) {
  if (ACQ_FAILPOINT("server.send")) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;  // simulated transport failure: drop the connection
  }
  int err = 0;
  if (SendAll(fd, line + "\n", &err)) return true;
  // EPIPE / ECONNRESET is the peer hanging up mid-reply — a clean teardown
  // of this connection, not a server fault.
  if (err != EPIPE && err != ECONNRESET) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void AcqServer::ServeConnection(size_t slot, int fd) {
  SuppressSigpipe(fd);
  if (options_.idle_timeout_ms > 0.0) {
    timeval tv{};
    const long total_us = static_cast<long>(options_.idle_timeout_ms * 1000.0);
    tv.tv_sec = total_us / 1000000;
    tv.tv_usec = total_us % 1000000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const size_t max_line = options_.max_line_bytes;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired: the peer went quiet mid-frame (or forever).
      idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (n <= 0) break;
    if (ACQ_FAILPOINT("server.recv")) break;  // simulated read failure
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while (open && (pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (Trim(line).empty()) continue;
      if (max_line != 0 && line.size() > max_line) {
        oversize_lines_.fetch_add(1, std::memory_order_relaxed);
        SendLine(fd, ErrorResponse(Status::InvalidArgument,
                                   StringFormat(
                                       "request line exceeds %zu bytes",
                                       max_line))
                         .Dump());
        open = false;
        break;
      }
      // Streaming SUBMITs push PROGRESS frames through this sink while the
      // connection thread is blocked inside HandleRequestLine (the protocol
      // is lockstep, so the run thread is the only writer on `fd` during
      // that window — frames are whole SendLine calls, never torn).
      open = SendLine(fd, HandleRequestLine(line, [this, fd](
                                                     const std::string& f) {
                        return SendLine(fd, f);
                      }));
    }
    // A partial line may never see its newline; bound it too so a client
    // streaming newline-free garbage cannot grow the buffer without limit.
    if (open && max_line != 0 && buffer.size() > max_line) {
      oversize_lines_.fetch_add(1, std::memory_order_relaxed);
      SendLine(fd, ErrorResponse(Status::InvalidArgument,
                                 StringFormat(
                                     "request line exceeds %zu bytes",
                                     max_line))
                       .Dump());
      open = false;
    }
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  ::close(fd);
  conn_fds_[slot] = -1;
}

std::string AcqServer::HandleRequestLine(const std::string& line,
                                         const LineSink& sink) {
  if (ACQ_FAILPOINT("server.parse")) {
    // Injected decoder fault: the response must still be a well-formed
    // protocol error so the client's retry logic sees a normal rejection.
    return ErrorResponse(Status::ParseError,
                         "injected parse failure (failpoint server.parse)")
        .Dump();
  }
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status()).Dump();
  if (!parsed->is_object()) {
    return ErrorResponse(Status::InvalidArgument,
                         "request must be a JSON object")
        .Dump();
  }
  return Dispatch(*parsed, sink).Dump();
}

JsonValue AcqServer::Dispatch(const JsonValue& request, const LineSink& sink) {
  const std::string cmd = ToUpper(request.GetString("cmd"));
  if (cmd == "SUBMIT") return HandleSubmit(request, sink);
  if (cmd == "STATUS") return HandleStatus(request);
  if (cmd == "CANCEL") return HandleCancel(request);
  if (cmd == "STOP") return HandleStop(request);
  if (cmd == "STATS") return HandleStats(request);
  if (cmd == "FAILPOINT") return HandleFailpoint(request);
  if (cmd == "CACHE") return HandleCache(request);
  if (cmd == "APPEND") return HandleAppend(request);
  if (cmd == "ATTACH") return HandleAttach(request);
  if (cmd == "DETACH") return HandleDetach(request);
  if (cmd == "TENANTS") return HandleTenants();
  return ErrorResponse(
      Status::InvalidArgument,
      StringFormat("unknown cmd '%s' "
                   "(SUBMIT|STATUS|CANCEL|STOP|STATS|FAILPOINT|CACHE|APPEND|"
                   "ATTACH|DETACH|TENANTS)",
                   cmd.c_str()));
}

Result<TenantPtr> AcqServer::ResolveTenant(const JsonValue& request) {
  const JsonValue* tenant = request.Get("tenant");
  if (tenant == nullptr) return default_tenant_;
  if (!tenant->is_string() || tenant->AsString().empty()) {
    return Status::InvalidArgument("'tenant' must be a non-empty string");
  }
  return registry_.Find(tenant->AsString());
}

Result<TenantPtr> AcqServer::ResolveTenantForSession(
    const JsonValue& request, const std::string& session_id) {
  if (request.Get("tenant") != nullptr) return ResolveTenant(request);
  if (TenantPtr tenant = registry_.FindBySession(session_id)) return tenant;
  return default_tenant_;
}

JsonValue AcqServer::HandleSubmit(const JsonValue& request,
                                  const LineSink& sink) {
  Result<TenantPtr> tenant = ResolveTenant(request);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  SessionManager& manager = (*tenant)->manager();
  const JsonValue* sql = request.Get("sql");
  if (sql == nullptr || !sql->is_string() || sql->AsString().empty()) {
    return ErrorResponse(Status::InvalidArgument,
                         "SUBMIT requires a non-empty string field 'sql'");
  }

  AcquireOptions options;
  options.gamma = request.GetNumber("gamma", options.gamma);
  options.delta = request.GetNumber("delta", options.delta);
  options.max_explored = static_cast<uint64_t>(request.GetNumber(
      "max_explored", static_cast<double>(options.max_explored)));
  options.collect_within_gamma =
      request.GetBool("collect_within_gamma", options.collect_within_gamma);
  options.repartition_iters = static_cast<int>(request.GetNumber(
      "repartition_iters", options.repartition_iters));
  options.stall_limit = static_cast<uint64_t>(request.GetNumber(
      "stall_limit", static_cast<double>(options.stall_limit)));
  options.divergence_patience = static_cast<int>(request.GetNumber(
      "divergence_patience", options.divergence_patience));
  if (options.gamma <= 0.0) {
    return ErrorResponse(Status::InvalidArgument, "gamma must be positive");
  }
  if (options.delta < 0.0) {
    return ErrorResponse(Status::InvalidArgument,
                         "delta must be non-negative");
  }
  if (const JsonValue* order = request.Get("order"); order != nullptr) {
    if (!order->is_string()) {
      return ErrorResponse(Status::InvalidArgument,
                           "'order' must be a string");
    }
    Result<SearchOrder> parsed = ParseOrder(order->AsString());
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    options.order = *parsed;
  }
  EvalBackend backend = EvalBackend::kAuto;
  if (const JsonValue* b = request.Get("backend"); b != nullptr) {
    if (!b->is_string()) {
      return ErrorResponse(Status::InvalidArgument,
                           "'backend' must be a string");
    }
    Result<EvalBackend> parsed = EvalBackendFromString(b->AsString());
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    backend = *parsed;
  }
  if (const JsonValue* batch = request.Get("batch_explore");
      batch != nullptr) {
    if (batch->is_bool()) {
      options.batch_explore =
          batch->AsBool() ? BatchExplore::kOn : BatchExplore::kOff;
    } else if (batch->is_string()) {
      const std::string lower = ToLower(batch->AsString());
      if (lower == "auto") {
        options.batch_explore = BatchExplore::kAuto;
      } else if (lower == "on") {
        options.batch_explore = BatchExplore::kOn;
      } else if (lower == "off") {
        options.batch_explore = BatchExplore::kOff;
      } else {
        return ErrorResponse(
            Status::InvalidArgument,
            StringFormat("unknown batch_explore '%s' (auto|on|off)",
                         batch->AsString().c_str()));
      }
    } else {
      return ErrorResponse(Status::InvalidArgument,
                           "'batch_explore' must be a bool or a string");
    }
  }
  if (const JsonValue* merge = request.Get("merge_strategy");
      merge != nullptr) {
    if (!merge->is_string() ||
        !ParseMergeStrategy(merge->AsString(), &options.merge_strategy)) {
      return ErrorResponse(
          Status::InvalidArgument,
          StringFormat("unknown merge_strategy '%s' "
                       "(auto|sequential|central|tree|radix)",
                       merge->is_string() ? merge->AsString().c_str() : "?"));
    }
  }
  const double budget_bytes = request.GetNumber(
      "memory_budget_bytes",
      static_cast<double>(options_.default_memory_budget_bytes));
  if (budget_bytes < 0.0) {
    return ErrorResponse(Status::InvalidArgument,
                         "memory_budget_bytes must be non-negative");
  }
  options.memory_budget_bytes = static_cast<uint64_t>(budget_bytes);
  const double timeout_ms =
      request.GetNumber("timeout_ms", options_.default_timeout_ms);

  // Streaming opt-in: "progress":{"interval_ms":N} (integral ms >= 0; 0 =
  // one frame per drained layer) or the shorthand "progress":true. The
  // interval is capped — a frame an hour is indistinguishable from no
  // streaming, so an oversize value is almost certainly a units mistake.
  constexpr double kMaxProgressIntervalMs = 3600000.0;  // one hour
  bool streaming = false;
  double interval_ms = 0.0;
  if (const JsonValue* progress = request.Get("progress");
      progress != nullptr) {
    if (progress->is_bool()) {
      streaming = progress->AsBool();
    } else if (progress->is_object()) {
      streaming = true;
      if (const JsonValue* interval = progress->Get("interval_ms");
          interval != nullptr) {
        if (!interval->is_number()) {
          return ErrorResponse(Status::InvalidArgument,
                               "'progress.interval_ms' must be a number");
        }
        const double v = interval->AsDouble();
        if (v < 0.0 || v != std::floor(v)) {
          return ErrorResponse(
              Status::InvalidArgument,
              "'progress.interval_ms' must be a non-negative integral "
              "millisecond count");
        }
        if (v > kMaxProgressIntervalMs) {
          return ErrorResponse(
              Status::InvalidArgument,
              StringFormat("'progress.interval_ms' exceeds the maximum %g ms",
                           kMaxProgressIntervalMs));
        }
        interval_ms = v;
      }
    } else {
      return ErrorResponse(
          Status::InvalidArgument,
          "'progress' must be a bool or an object {\"interval_ms\":N}");
    }
  }
  if (streaming) {
    if (const JsonValue* w = request.Get("wait");
        w != nullptr && w->is_bool() && !w->AsBool()) {
      return ErrorResponse(Status::InvalidArgument,
                           "'progress' streaming implies \"wait\":true "
                           "(frames precede the terminal reply on this "
                           "connection)");
    }
  }

  SessionProgress progress_opt;
  if (streaming && sink) {
    progress_opt.enabled = true;
    progress_opt.interval_ms = interval_ms;
    // Runs on the run thread between layers. The frame's governor snapshot
    // is the tenant's own admission state; the shared_ptr capture keeps the
    // tenant alive even if it is detached mid-run.
    progress_opt.callback = [this, sink, tenant = *tenant](
                                const Session& session,
                                const ProgressSnapshot& snap) {
      if (ACQ_FAILPOINT("server.progress_emit")) {
        // Injected frame drop: the frame vanishes, the run and its final
        // report are unaffected, and the protocol stream stays well-formed
        // (frames carry no sequence numbers a gap could corrupt).
        progress_drops_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (!sink(ProgressFrameJson(session, snap, tenant->id(),
                                  &tenant->manager(), &governor_)
                    .Dump())) {
        progress_drops_.fetch_add(1, std::memory_order_relaxed);
      }
    };
  }

  Result<SessionPtr> submitted =
      manager.Submit(sql->AsString(), std::move(options), timeout_ms, backend,
                     std::move(progress_opt));
  if (!submitted.ok()) return ErrorResponse(submitted.status());
  const SessionPtr& session = *submitted;
  if (request.GetBool("wait", false) || streaming) session->WaitDone();
  return SessionToJson(*session);
}

JsonValue AcqServer::HandleStatus(const JsonValue& request) {
  const std::string id = request.GetString("id");
  Result<TenantPtr> tenant = ResolveTenantForSession(request, id);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  Result<SessionPtr> session = (*tenant)->manager().Find(id);
  if (!session.ok()) return ErrorResponse(session.status());
  if (request.GetBool("wait", false)) (*session)->WaitDone();
  return SessionToJson(**session);
}

JsonValue AcqServer::HandleCancel(const JsonValue& request) {
  const std::string id = request.GetString("id");
  Result<TenantPtr> tenant = ResolveTenantForSession(request, id);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  Result<SessionPtr> session = (*tenant)->manager().Cancel(id);
  if (!session.ok()) return ErrorResponse(session.status());
  if (request.GetBool("wait", false)) (*session)->WaitDone();
  return SessionToJson(**session);
}

JsonValue AcqServer::HandleStop(const JsonValue& request) {
  const std::string id = request.GetString("id");
  Result<TenantPtr> tenant = ResolveTenantForSession(request, id);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  Result<SessionPtr> session = (*tenant)->manager().Stop(id);
  if (!session.ok()) return ErrorResponse(session.status());
  if (request.GetBool("wait", false)) (*session)->WaitDone();
  return SessionToJson(**session);
}

JsonValue AcqServer::HandleStats(const JsonValue& request) {
  Result<TenantPtr> resolved = ResolveTenant(request);
  if (!resolved.ok()) return ErrorResponse(resolved.status());
  SessionManager& manager = (*resolved)->manager();
  const ServerCounters counters = manager.counters();
  JsonValue stats = JsonValue::Object();
  auto set = [&stats](const char* key, uint64_t value) {
    stats.Set(key, JsonValue::Number(static_cast<double>(value)));
  };
  set("submitted", counters.submitted);
  set("rejected", counters.rejected);
  set("completed", counters.completed);
  set("truncated", counters.truncated);
  set("deadline_exceeded", counters.deadline_exceeded);
  set("cancelled", counters.cancelled);
  set("client_satisfied", counters.client_satisfied);
  set("resource_exhausted", counters.resource_exhausted);
  set("failed", counters.failed);
  // Streaming: frames this tenant's runs emitted (throttle-passed layer
  // drains) and frames the server then dropped (server.progress_emit
  // failpoint or a dead connection; the drop tally is server-wide).
  set("progress_frames", counters.progress_frames);
  set("progress_drops", progress_drops_.load(std::memory_order_relaxed));
  set("queries_explored", counters.queries_explored);
  set("cell_queries", counters.cell_queries);
  set("eval_queries", counters.eval_queries);
  set("tuples_scanned", counters.tuples_scanned);
  // Eq. 17 merge publication tallies (core/parallel_merge.h), folded
  // across finished runs. STATS-only: reports/envelopes never carry them,
  // so cached replies stay byte-identical.
  set("merge_layers_central", counters.merge_layers_central);
  set("merge_layers_tree", counters.merge_layers_tree);
  set("merge_layers_radix", counters.merge_layers_radix);
  set("merge_layers_sequential", counters.merge_layers_sequential);
  // Index-build and live-ingestion tallies (STATS-only, like the merge
  // counters above): cumulative prepare wall time, rows staged into index
  // delta buffers, delta-into-base merges, and APPEND activity.
  stats.Set("prepare_ms",
            JsonValue::Number(static_cast<double>(counters.prepare_micros) /
                              1000.0));
  set("delta_rows", counters.delta_rows);
  set("delta_merges", counters.delta_merges);
  set("appends", counters.appends);
  set("append_rows", counters.append_rows);
  set("catalog_generation", manager.catalog().generation());
  stats.Set("run_ms",
            JsonValue::Number(static_cast<double>(counters.run_micros) /
                              1000.0));
  set("running", manager.num_running());
  set("queued", manager.num_queued());
  set("pool_threads", ThreadPool::Shared().num_threads());
  // Result-cache state (all zero while cache_bytes is 0 / disabled).
  const ResultCacheStats cache = manager.cache().stats();
  set("cache_hits", cache.hits);
  set("cache_misses", cache.misses);
  set("cache_inflight_joins", counters.cache_inflight_joins);
  set("cache_evictions", cache.evictions);
  set("cache_entries", cache.entries);
  set("cache_bytes", cache.bytes);
  set("cache_limit_bytes", cache.limit_bytes);
  set("cache_negative_hits", cache.negative_hits);
  set("cache_negative_entries", cache.negative_entries);
  set("cache_negative_served", counters.cache_negative_served);
  // Connection-hardening and fault-injection counters.
  set("oversize_lines", oversize_lines_.load(std::memory_order_relaxed));
  set("idle_disconnects", idle_disconnects_.load(std::memory_order_relaxed));
  set("io_errors", io_errors_.load(std::memory_order_relaxed));
  stats.Set("failpoints_enabled",
            JsonValue::Bool(FailpointRegistry::compiled_in()));
  set("failpoint_hits", FailpointRegistry::Global().TotalHits());
  // Durability: whether this tenant logs at all, live WAL/checkpoint state
  // and what startup recovery replayed. All stable across cached replies —
  // STATS is never cached.
  const TenantDurability* durability = (*resolved)->durability();
  stats.Set("wal_enabled", JsonValue::Bool(durability != nullptr));
  if (durability != nullptr) {
    const TenantDurability::Stats wal = durability->stats();
    set("wal_records", wal.wal_records);
    set("wal_bytes", wal.wal_bytes);
    set("wal_syncs", wal.wal_syncs);
    set("wal_checkpoints", wal.checkpoints);
    set("disk_bytes", wal.disk_bytes);
    set("disk_limit_bytes", wal.disk_limit_bytes);
    set("wal_quota_rejections", wal.quota_rejections);
    const TenantDurability::Recovery& recovery = durability->recovery();
    stats.Set("recovery_checkpoint_loaded",
              JsonValue::Bool(recovery.checkpoint_loaded));
    set("recovery_checkpoint_generation", recovery.checkpoint_generation);
    set("recovery_wal_records", recovery.wal_records);
    set("recovery_wal_rows", recovery.wal_rows);
    set("recovery_wal_skipped", recovery.wal_skipped);
    stats.Set("recovery_torn_tail", JsonValue::Bool(recovery.wal_torn_tail));
  }
  // Tenancy and governor state. "tenant" names whose counters these are;
  // the slot/budget fields are global (shared across every tenant).
  stats.Set("tenant", JsonValue::Str((*resolved)->id()));
  set("tenants", registry_.size());
  set("total_run_slots", governor_.total_slots());
  set("used_run_slots", governor_.used_slots());
  set("global_memory_budget_bytes", governor_.global_memory_budget_bytes());
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("stats", std::move(stats));
  return out;
}

JsonValue AcqServer::HandleFailpoint(const JsonValue& request) {
  if (const JsonValue* set = request.Get("set"); set != nullptr) {
    if (!set->is_string()) {
      return ErrorResponse(Status::InvalidArgument,
                           "'set' must be a string \"name=spec;...\"");
    }
    if (!FailpointRegistry::compiled_in()) {
      return ErrorResponse(Status::Unsupported,
                           "failpoints compiled out "
                           "(-DACQUIRE_FAILPOINTS_ENABLED=OFF)");
    }
    Status status =
        FailpointRegistry::Global().ConfigureFromSpec(set->AsString());
    if (!status.ok()) return ErrorResponse(status);
  }
  if (const JsonValue* clear = request.Get("clear"); clear != nullptr) {
    if (clear->is_string()) {
      Status status = FailpointRegistry::Global().Configure(
          clear->AsString(), "off");
      if (!status.ok()) return ErrorResponse(status);
    } else if (clear->is_bool() && clear->AsBool()) {
      FailpointRegistry::Global().DisarmAll();
    } else {
      return ErrorResponse(Status::InvalidArgument,
                           "'clear' must be true or a site name");
    }
  }
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("enabled", JsonValue::Bool(FailpointRegistry::compiled_in()));
  JsonValue sites = JsonValue::Array();
  for (const FailpointRegistry::SiteInfo& info :
       FailpointRegistry::Global().List()) {
    JsonValue site = JsonValue::Object();
    site.Set("name", JsonValue::Str(info.name));
    site.Set("spec", JsonValue::Str(info.spec));
    site.Set("hits", JsonValue::Number(static_cast<double>(info.hits)));
    site.Set("evaluations",
             JsonValue::Number(static_cast<double>(info.evaluations)));
    sites.Append(std::move(site));
  }
  out.Set("sites", std::move(sites));
  out.Set("total_hits",
          JsonValue::Number(
              static_cast<double>(FailpointRegistry::Global().TotalHits())));
  return out;
}

JsonValue AcqServer::HandleCache(const JsonValue& request) {
  Result<TenantPtr> tenant = ResolveTenant(request);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  SessionManager& manager = (*tenant)->manager();
  ResultCache& cache = manager.cache();
  if (const JsonValue* limit = request.Get("limit"); limit != nullptr) {
    if (!limit->is_number() || limit->AsDouble() < 0.0) {
      return ErrorResponse(Status::InvalidArgument,
                           "'limit' must be a non-negative byte count");
    }
    cache.set_limit_bytes(static_cast<uint64_t>(limit->AsDouble()));
  }
  if (const JsonValue* clear = request.Get("clear"); clear != nullptr) {
    if (!clear->is_bool()) {
      return ErrorResponse(Status::InvalidArgument, "'clear' must be a bool");
    }
    if (clear->AsBool()) cache.Clear();
  }
  const ResultCacheStats stats = cache.stats();
  const ServerCounters counters = manager.counters();
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("tenant", JsonValue::Str((*tenant)->id()));
  out.Set("enabled", JsonValue::Bool(cache.enabled()));
  JsonValue body = JsonValue::Object();
  auto set = [&body](const char* key, uint64_t value) {
    body.Set(key, JsonValue::Number(static_cast<double>(value)));
  };
  set("hits", stats.hits);
  set("misses", stats.misses);
  set("inflight_joins", counters.cache_inflight_joins);
  set("evictions", stats.evictions);
  set("entries", stats.entries);
  set("bytes", stats.bytes);
  set("limit_bytes", stats.limit_bytes);
  set("negative_hits", stats.negative_hits);
  set("negative_entries", stats.negative_entries);
  set("negative_served", counters.cache_negative_served);
  out.Set("cache", std::move(body));
  return out;
}

JsonValue AcqServer::HandleAppend(const JsonValue& request) {
  Result<TenantPtr> tenant = ResolveTenant(request);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  SessionManager& manager = (*tenant)->manager();
  const JsonValue* table = request.Get("table");
  if (table == nullptr || !table->is_string() || table->AsString().empty()) {
    return ErrorResponse(Status::InvalidArgument,
                         "APPEND requires a non-empty string field 'table'");
  }
  const JsonValue* rows = request.Get("rows");
  if (rows == nullptr || !rows->is_array()) {
    return ErrorResponse(Status::InvalidArgument,
                         "APPEND requires an array field 'rows'");
  }
  // Schema lookup for coercion only — APPEND never adds or removes tables,
  // so the name->table map is stable while serving and this read needs no
  // data lock. The append itself goes through the manager's exclusive lock.
  Result<TablePtr> resolved = manager.catalog().GetTable(table->AsString());
  if (!resolved.ok()) return ErrorResponse(resolved.status());
  const Schema& schema = (*resolved)->schema();

  std::vector<std::vector<Value>> parsed;
  parsed.reserve(rows->AsArray().size());
  for (size_t r = 0; r < rows->AsArray().size(); ++r) {
    const JsonValue& row = rows->AsArray()[r];
    if (!row.is_array()) {
      return ErrorResponse(
          Status::InvalidArgument,
          StringFormat("row %zu: must be an array of values", r));
    }
    if (row.AsArray().size() != schema.num_fields()) {
      return ErrorResponse(
          Status::InvalidArgument,
          StringFormat("row %zu has %zu values, table %s has %zu columns", r,
                       row.AsArray().size(), table->AsString().c_str(),
                       schema.num_fields()));
    }
    std::vector<Value> values;
    values.reserve(row.AsArray().size());
    for (size_t i = 0; i < row.AsArray().size(); ++i) {
      const JsonValue& cell = row.AsArray()[i];
      const DataType type = schema.field(i).type;
      switch (type) {
        case DataType::kInt64: {
          // JSON numbers are doubles; an int64 column only accepts values
          // that are exactly representable integers, so ingestion cannot
          // silently round.
          if (!cell.is_number()) {
            return ErrorResponse(
                Status::TypeError,
                StringFormat("row %zu column %zu: expected an integer", r,
                             i));
          }
          const double v = cell.AsDouble();
          constexpr double kMaxExact = 9007199254740992.0;  // 2^53
          if (v != std::floor(v) || v < -kMaxExact || v > kMaxExact) {
            return ErrorResponse(
                Status::TypeError,
                StringFormat(
                    "row %zu column %zu: %g is not an exact integer", r, i,
                    v));
          }
          values.emplace_back(static_cast<int64_t>(v));
          break;
        }
        case DataType::kDouble:
          if (!cell.is_number()) {
            return ErrorResponse(
                Status::TypeError,
                StringFormat("row %zu column %zu: expected a number", r, i));
          }
          values.emplace_back(cell.AsDouble());
          break;
        case DataType::kString:
          if (!cell.is_string()) {
            return ErrorResponse(
                Status::TypeError,
                StringFormat("row %zu column %zu: expected a string", r, i));
          }
          values.emplace_back(cell.AsString());
          break;
      }
    }
    parsed.push_back(std::move(values));
  }

  Status status = manager.AppendRows(table->AsString(), parsed);
  if (!status.ok()) return ErrorResponse(status);
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("table", JsonValue::Str(table->AsString()));
  out.Set("appended",
          JsonValue::Number(static_cast<double>(parsed.size())));
  out.Set("num_rows", JsonValue::Number(
                          static_cast<double>((*resolved)->num_rows())));
  out.Set("generation",
          JsonValue::Number(
              static_cast<double>(manager.catalog().generation())));
  return out;
}

JsonValue AcqServer::HandleAttach(const JsonValue& request) {
  AttachParams params;
  params.id = request.GetString("tenant");
  params.generator = request.GetString("gen");
  params.loaddb_dir = request.GetString("loaddb");
  const double rows = request.GetNumber("rows", 0.0);
  const double seed = request.GetNumber("seed", 0.0);
  if (rows < 0.0 || seed < 0.0) {
    return ErrorResponse(Status::InvalidArgument,
                         "'rows' and 'seed' must be non-negative");
  }
  params.rows = static_cast<uint64_t>(rows);
  params.seed = static_cast<uint64_t>(seed);
  params.weight = request.GetNumber("weight", 1.0);
  const double max_queued = request.GetNumber("max_queued", 0.0);
  if (max_queued < 0.0) {
    return ErrorResponse(Status::InvalidArgument,
                         "'max_queued' must be non-negative");
  }
  params.max_queued = static_cast<size_t>(max_queued);
  if (const JsonValue* cache_bytes = request.Get("cache_bytes");
      cache_bytes != nullptr) {
    if (!cache_bytes->is_number() || cache_bytes->AsDouble() < 0.0) {
      return ErrorResponse(Status::InvalidArgument,
                           "'cache_bytes' must be a non-negative byte count");
    }
    params.cache_bytes = static_cast<int64_t>(cache_bytes->AsDouble());
  }
  if (const JsonValue* disk_bytes = request.Get("disk_bytes");
      disk_bytes != nullptr) {
    if (!disk_bytes->is_number() || disk_bytes->AsDouble() < 0.0) {
      return ErrorResponse(Status::InvalidArgument,
                           "'disk_bytes' must be a non-negative byte count");
    }
    params.disk_bytes = static_cast<uint64_t>(disk_bytes->AsDouble());
  }
  Result<TenantPtr> attached = registry_.Attach(params);
  if (!attached.ok()) return ErrorResponse(attached.status());
  const TenantPtr& tenant = *attached;
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("tenant", JsonValue::Str(tenant->id()));
  out.Set("weight", JsonValue::Number(tenant->weight()));
  JsonValue tables = JsonValue::Array();
  for (const std::string& name :
       tenant->manager().catalog().TableNames()) {
    tables.Append(JsonValue::Str(name));
  }
  out.Set("tables", std::move(tables));
  out.Set("generation",
          JsonValue::Number(static_cast<double>(
              tenant->manager().catalog().generation())));
  return out;
}

JsonValue AcqServer::HandleDetach(const JsonValue& request) {
  const JsonValue* tenant = request.Get("tenant");
  if (tenant == nullptr || !tenant->is_string() ||
      tenant->AsString().empty()) {
    return ErrorResponse(Status::InvalidArgument,
                         "DETACH requires a non-empty string field 'tenant'");
  }
  Status status = registry_.Detach(tenant->AsString());
  if (!status.ok()) return ErrorResponse(status);
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("tenant", JsonValue::Str(tenant->AsString()));
  return out;
}

JsonValue AcqServer::HandleTenants() {
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  JsonValue list = JsonValue::Array();
  for (const TenantPtr& tenant : registry_.List()) {
    SessionManager& manager = tenant->manager();
    JsonValue entry = JsonValue::Object();
    entry.Set("tenant", JsonValue::Str(tenant->id()));
    entry.Set("weight", JsonValue::Number(tenant->weight()));
    entry.Set("running", JsonValue::Number(
                             static_cast<double>(manager.num_running())));
    entry.Set("queued", JsonValue::Number(
                            static_cast<double>(manager.num_queued())));
    entry.Set("generation",
              JsonValue::Number(static_cast<double>(
                  manager.catalog().generation())));
    const ServerCounters counters = manager.counters();
    entry.Set("submitted", JsonValue::Number(
                               static_cast<double>(counters.submitted)));
    entry.Set("completed", JsonValue::Number(
                               static_cast<double>(counters.completed)));
    entry.Set("rejected", JsonValue::Number(
                              static_cast<double>(counters.rejected)));
    // Streaming/early-stop admission metrics (mirrored per-frame in the
    // PROGRESS "governor" object): how many of this tenant's runs were
    // client-stopped and how many frames its runs have emitted.
    entry.Set("client_satisfied",
              JsonValue::Number(
                  static_cast<double>(counters.client_satisfied)));
    entry.Set("progress_frames",
              JsonValue::Number(
                  static_cast<double>(counters.progress_frames)));
    const ResultCacheStats cache = manager.cache().stats();
    entry.Set("cache_entries",
              JsonValue::Number(static_cast<double>(cache.entries)));
    entry.Set("cache_bytes",
              JsonValue::Number(static_cast<double>(cache.bytes)));
    entry.Set("cache_limit_bytes",
              JsonValue::Number(static_cast<double>(cache.limit_bytes)));
    if (const TenantDurability* durability = tenant->durability();
        durability != nullptr) {
      const TenantDurability::Stats wal = durability->stats();
      entry.Set("disk_bytes",
                JsonValue::Number(static_cast<double>(wal.disk_bytes)));
      entry.Set("disk_limit_bytes",
                JsonValue::Number(static_cast<double>(wal.disk_limit_bytes)));
    }
    ResourceGovernor::TenantUsage usage;
    if (governor_.Usage(&manager, &usage)) {
      entry.Set("active_slots", JsonValue::Number(
                                    static_cast<double>(usage.active_slots)));
      entry.Set("slot_limit", JsonValue::Number(
                                  static_cast<double>(usage.slot_limit)));
      entry.Set("memory_share_bytes",
                JsonValue::Number(
                    static_cast<double>(usage.memory_share_bytes)));
    }
    list.Append(std::move(entry));
  }
  out.Set("tenants", std::move(list));
  out.Set("total_run_slots",
          JsonValue::Number(static_cast<double>(governor_.total_slots())));
  out.Set("used_run_slots",
          JsonValue::Number(static_cast<double>(governor_.used_slots())));
  out.Set("global_memory_budget_bytes",
          JsonValue::Number(static_cast<double>(
              governor_.global_memory_budget_bytes())));
  return out;
}

}  // namespace acquire
