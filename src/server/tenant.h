#ifndef ACQUIRE_SERVER_TENANT_H_
#define ACQUIRE_SERVER_TENANT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/session.h"
#include "storage/catalog.h"

namespace acquire {

class ServerDurability;
class TenantDurability;

/// Global fair-share arbiter for every SessionManager the server runs —
/// one per tenant. Three resources are governed process-wide:
///
///   Run slots. The governor owns `total_run_slots` (the old process-wide
///   max_running) and grants them across tenants. A Submit that finds a
///   free slot (and its tenant under its own per-tenant limit) runs
///   immediately — the governor is work-conserving. When slots are
///   contended, admitted requests wait in their tenant's own bounded queue
///   and freed slots are dealt out by stride scheduling (each dispatch
///   advances the tenant's pass by 1/weight; the lowest pass goes next), so
///   a tenant flooding its queue gets exactly its weighted share and can
///   never starve the others.
///
///   Memory. A single global byte budget is carved into per-tenant soft
///   shares proportional to weight. A run's cap is its tenant's share —
///   plus the shares of currently idle tenants (borrow-back of idle
///   headroom) — divided across the tenant's active runs. The cap only
///   ever tightens an explicit per-request budget, never loosens it.
///
///   Cache. Partitioning needs no arbitration: each tenant's manager owns
///   a private ResultCache with its own byte limit and GDSF clock, so one
///   tenant's working set cannot evict another's and a reply can never be
///   served across tenant ids.
///
/// Lock discipline: the governor's mutex is a leaf with one exception —
/// the dispatch loop releases it around SessionManager::DispatchOneQueued
/// (which takes the manager's own lock). No SessionManager lock is ever
/// held while calling ReleaseRunSlot / NotifyQueued (their dispatch may
/// re-enter a manager); TryAcquireRunSlot and GovernMemoryBudget touch
/// only the governor mutex and are safe anywhere. Every method tolerates
/// an unregistered manager (no-op / deny), so a manager racing its own
/// Deregister stays safe.
class ResourceGovernor {
 public:
  struct Options {
    /// Process-wide concurrent run bound shared by all tenants. 0 sizes to
    /// half the shared ThreadPool (at least 1), matching the historical
    /// single-tenant SessionManager default.
    size_t total_run_slots = 0;
    /// Global memory budget carved into per-tenant shares; 0 leaves every
    /// run's budget exactly as requested (no memory governance).
    uint64_t global_memory_budget_bytes = 0;
  };

  explicit ResourceGovernor(Options options);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Adds `manager` to the schedule with the given weight (> 0; clamped to
  /// a small positive minimum). `slot_limit` caps the manager's concurrent
  /// slots (its own max_running). The new tenant starts at the current
  /// minimum pass so it is next in line but owes no retroactive service.
  void Register(SessionManager* manager, double weight, size_t slot_limit);

  /// Removes `manager` from the schedule. Blocks until no dispatch is in
  /// flight against it; the caller must have drained the manager first
  /// (Shutdown), so no slots are outstanding.
  void Deregister(SessionManager* manager);

  /// Grants a run slot to `manager` when one is free globally and the
  /// manager is under its per-tenant limit. False = the caller must queue
  /// (or reject when its queue is full). Advances the stride pass, so
  /// uncontended traffic still accrues fair-share history.
  bool TryAcquireRunSlot(SessionManager* manager);

  /// Returns a slot and deals freed capacity out to queued work across all
  /// tenants (stride order, see above). Never called with any
  /// SessionManager lock held.
  void ReleaseRunSlot(SessionManager* manager);

  /// A request was queued on `manager`: dispatch if capacity is free.
  /// Closes the race where a Submit enqueues just after a release scan
  /// found every queue empty. Never called with a manager lock held.
  void NotifyQueued(SessionManager* manager);

  /// The memory carve-up (see class comment). Returns the budget the run
  /// should use: `requested` untouched when memory governance is off or
  /// the manager is unknown; otherwise min(requested, cap) with cap >= 1
  /// so a governed run is never accidentally unmetered (0 = unlimited in
  /// AcquireOptions).
  uint64_t GovernMemoryBudget(SessionManager* manager, uint64_t requested);

  /// Point-in-time per-tenant view for TENANTS / STATS.
  struct TenantUsage {
    double weight = 1.0;
    size_t active_slots = 0;
    size_t slot_limit = 0;
    /// This tenant's weighted share of the global budget (0 when memory
    /// governance is off).
    uint64_t memory_share_bytes = 0;
  };
  /// False when `manager` is not registered.
  bool Usage(const SessionManager* manager, TenantUsage* out) const;

  size_t total_slots() const { return total_slots_; }
  size_t used_slots() const;
  uint64_t global_memory_budget_bytes() const { return global_memory_; }

 private:
  struct Entry {
    SessionManager* manager = nullptr;
    double weight = 1.0;
    size_t slot_limit = 0;
    size_t active = 0;  // slots currently granted
    /// Stride-scheduling pass: advanced by 1/weight per granted slot; the
    /// runnable entry with the lowest pass is dispatched next.
    double pass = 0.0;
    /// A dispatch against this entry is in flight outside the governor
    /// lock; Deregister waits for it and the dispatch loop skips it.
    bool busy = false;
  };

  Entry* FindEntryLocked(const SessionManager* manager);
  const Entry* FindEntryLocked(const SessionManager* manager) const;
  /// Deals free slots to queued work until slots run out or every
  /// non-busy tenant's queue is dry. Requires `lock` held; temporarily
  /// releases it around each DispatchOneQueued call.
  void DispatchLocked(std::unique_lock<std::mutex>& lock);

  const size_t total_slots_;
  const uint64_t global_memory_;

  mutable std::mutex mu_;
  std::condition_variable busy_cv_;  // signalled when an entry's busy clears
  std::vector<Entry> entries_;
  size_t used_slots_ = 0;
};

/// One attached tenant: a wire-level id bound to its own Catalog and its
/// own SessionManager (and therefore its own result-cache partition,
/// counters and admission queue). The catalog is owned for ATTACHed
/// tenants and merely adopted for the default tenant (the server's
/// constructor catalog, which must outlive the registry).
class Tenant {
 public:
  Tenant();
  ~Tenant();

  const std::string& id() const { return id_; }
  double weight() const { return weight_; }
  SessionManager& manager() { return *manager_; }
  const SessionManager& manager() const { return *manager_; }

  /// This tenant's WAL/checkpoint state; null when durability is off (no
  /// --wal-dir) or the tenant's catalog is read-only.
  TenantDurability* durability() { return durability_.get(); }
  const TenantDurability* durability() const { return durability_.get(); }

 private:
  friend class TenantRegistry;
  std::string id_;
  double weight_ = 1.0;
  std::unique_ptr<Catalog> owned_catalog_;  // null for the default tenant
  /// Declared before the manager: the manager's options point at it (the
  /// DurabilityHook), so it must outlive the manager's destruction.
  std::unique_ptr<TenantDurability> durability_;
  std::unique_ptr<SessionManager> manager_;
};

using TenantPtr = std::shared_ptr<Tenant>;

/// ATTACH parameters: the same load/generator surface the shell exposes.
/// Exactly one data source must be set — a generator kind or a \loaddb
/// directory.
struct AttachParams {
  std::string id;
  /// "tpch" | "users" | "patients"; empty when loading from a directory.
  std::string generator;
  size_t rows = 0;    // 0 = the generator's default size
  uint64_t seed = 0;  // 0 = the generator's default seed
  /// SaveCatalog directory to restore (alternative to `generator`).
  std::string loaddb_dir;
  /// Fair-share weight (> 0) for the governor's stride schedule and the
  /// memory carve-up.
  double weight = 1.0;
  /// Per-tenant admission-queue bound; 0 inherits the server default.
  size_t max_queued = 0;
  /// Per-tenant result-cache byte limit; negative inherits the server
  /// default, 0 disables the partition.
  int64_t cache_bytes = -1;
  /// Disk quota over the tenant's WAL + checkpoint bytes; APPENDs beyond
  /// it answer kResourceExhausted. 0 = unlimited. Only meaningful when the
  /// server runs with durability (--wal-dir).
  uint64_t disk_bytes = 0;
};

/// Wire-level tenant id -> Tenant. The default tenant ("default") adopts
/// the server's constructor catalog at construction time and cannot be
/// detached; every other tenant owns a catalog built by Attach and is torn
/// down by Detach (drain in-flight runs via the manager's cancellation
/// path, then deregister from the governor, then destroy).
///
/// Thread safety: all methods are safe to call concurrently. Detach
/// removes the tenant from the map first (no new requests can route to
/// it), then drains outside the registry lock, so lookups never block
/// behind a drain. Callers may hold a TenantPtr across a concurrent
/// Detach: the manager answers Unavailable once shut down and the tenant
/// is destroyed when the last reference drops.
class TenantRegistry {
 public:
  static constexpr const char* kDefaultId = "default";

  /// `governor` must outlive the registry and every TenantPtr handed out.
  /// `base_options` seeds per-tenant SessionManagerOptions (max_running,
  /// max_queued, cache_bytes); the governor field of the base is ignored
  /// and replaced with `governor`. `durability` (optional; must outlive
  /// the registry) adds write-ahead logging: each mutable-catalog tenant
  /// gets its own recovered TenantDurability and ATTACH/DETACH hit the
  /// server manifest.
  TenantRegistry(ResourceGovernor* governor, SessionManagerOptions base_options,
                 ServerDurability* durability = nullptr);

  /// Shuts down and deregisters every tenant.
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Installs the default tenant over an adopted catalog (not owned; must
  /// outlive the registry). The mutable overload enables APPEND. Sessions
  /// keep the historical bare "s-<n>" ids for wire compatibility.
  TenantPtr AdoptDefault(Catalog* catalog, double weight = 1.0);
  TenantPtr AdoptDefault(const Catalog* catalog, double weight = 1.0);

  /// Builds the tenant's catalog (generator or loaddb), stamps the tenant
  /// id into its load_params (so two tenants generated with identical
  /// parameters still fingerprint apart — defense in depth on top of the
  /// per-tenant cache partitions), registers with the governor and
  /// publishes the tenant. AlreadyExists when the id is taken,
  /// InvalidArgument for a malformed id or params.
  ///
  /// With durability: a fresh attach wipes any leftover durability
  /// directory for the id and logs ATTACH to the manifest before
  /// publishing; `from_recovery` (the server's manifest replay) instead
  /// recovers the tenant's checkpoint + WAL into the rebuilt catalog and
  /// logs nothing.
  Result<TenantPtr> Attach(const AttachParams& params,
                           bool from_recovery = false);

  /// Drains and removes tenant `id`: unroutes it, cancels in-flight runs
  /// through SessionManager::Shutdown, deregisters from the governor.
  /// InvalidArgument for the default tenant, NotFound for unknown ids.
  Status Detach(const std::string& id);

  Result<TenantPtr> Find(const std::string& id) const;

  /// Resolves a session id ("t1-s-3", or bare "s-3" for the default
  /// tenant) to the tenant serving it; null when no tenant knows the id.
  TenantPtr FindBySession(const std::string& session_id) const;

  /// Snapshot of all tenants in id order (default first — map order is
  /// lexicographic and ids may sort around it, so callers should not rely
  /// on position).
  std::vector<TenantPtr> List() const;

  size_t size() const;

 private:
  TenantPtr MakeTenantLocked(std::string id, double weight,
                             std::unique_ptr<Catalog> owned,
                             Catalog* mutable_catalog,
                             const Catalog* const_catalog,
                             std::unique_ptr<TenantDurability> durability,
                             SessionManagerOptions options);

  ResourceGovernor* const governor_;
  const SessionManagerOptions base_options_;
  /// Null or disabled = no durability; owned by the server.
  ServerDurability* const durability_;

  mutable std::mutex mu_;
  std::map<std::string, TenantPtr> tenants_;
  /// Ids mid-Attach (catalog build + durability recovery happen outside
  /// mu_): claimed up front so a concurrent duplicate ATTACH can never wipe
  /// a directory another attach is populating.
  std::set<std::string> attaching_;
};

/// A valid wire-level tenant id: 1..64 chars of [A-Za-z0-9_.-], so ids
/// embed cleanly in session ids, JSON and shell commands.
bool IsValidTenantId(const std::string& id);

}  // namespace acquire

#endif  // ACQUIRE_SERVER_TENANT_H_
