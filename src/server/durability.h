#ifndef ACQUIRE_SERVER_DURABILITY_H_
#define ACQUIRE_SERVER_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/session.h"
#include "server/tenant.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace acquire {

/// Server-level durability configuration (ServerOptions carries the same
/// fields; see storage/wal.h for the on-disk formats and invariants).
struct DurabilityOptions {
  /// Root directory: <dir>/MANIFEST plus one <dir>/<tenant>/ per tenant
  /// (wal.log, ckpt-<seq>/, CURRENT). Empty = durability disabled.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Checkpoint (snapshot + log trim) automatically after this many logged
  /// appends; 0 checkpoints only at clean shutdown.
  uint64_t checkpoint_interval_appends = 0;
};

/// One tenant's write-ahead log + checkpoints, implementing the
/// SessionManager's DurabilityHook. LogAppend/CommitApplied run under the
/// manager's exclusive data lock; Checkpoint/Flush are called only when no
/// append is in flight (shutdown, or inside CommitApplied). stats() may be
/// read concurrently from the STATS path, hence the internal mutex.
class TenantDurability : public DurabilityHook {
 public:
  /// What startup recovery found and replayed for this tenant.
  struct Recovery {
    bool checkpoint_loaded = false;
    uint64_t checkpoint_generation = 0;
    size_t wal_records = 0;  // replayed (post-checkpoint) records
    size_t wal_rows = 0;
    size_t wal_skipped = 0;  // records already covered by the checkpoint
    bool wal_torn_tail = false;
    /// A record failed to apply (base data no longer matches the log, e.g.
    /// the server was restarted with different generator flags). Replay
    /// stops there; startup proceeds with what applied.
    bool apply_error = false;
  };

  /// Opens tenant `id`'s durability directory and RECOVERS into `catalog`:
  /// loads the published checkpoint when one exists (replacing the tables
  /// and restoring the exact generation/load_params), then replays the WAL
  /// — skipping records the checkpoint already covers and truncating any
  /// torn tail — and finally opens the log for appending. Corruption never
  /// fails this; only real I/O errors do. `disk_bytes` caps WAL +
  /// checkpoint bytes (0 = unlimited).
  static Result<std::unique_ptr<TenantDurability>> Open(
      const DurabilityOptions& options, const std::string& id,
      uint64_t disk_bytes, Catalog* catalog);

  // DurabilityHook:
  Status LogAppend(const Catalog& catalog, const std::string& table,
                   const std::vector<std::vector<Value>>& rows) override;
  void CommitApplied(const Catalog& catalog) override;

  /// Snapshots `catalog` and trims the log (wal.h WriteCheckpoint + Reset).
  Status Checkpoint(const Catalog& catalog);

  /// Fsyncs everything logged so far (no-op under FsyncPolicy::kNever).
  Status Flush();

  struct Stats {
    uint64_t wal_records = 0;
    uint64_t wal_bytes = 0;
    uint64_t wal_syncs = 0;
    uint64_t checkpoints = 0;
    uint64_t disk_bytes = 0;        // WAL + checkpoints on disk now
    uint64_t disk_limit_bytes = 0;  // 0 = unlimited
    uint64_t quota_rejections = 0;
  };
  Stats stats() const;

  const Recovery& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }

 private:
  TenantDurability(std::string dir, const DurabilityOptions& options,
                   uint64_t disk_bytes);

  Status CheckpointLocked(const Catalog& catalog);

  const std::string dir_;
  const DurabilityOptions options_;
  const uint64_t disk_limit_;
  Recovery recovery_;

  mutable std::mutex mu_;
  std::unique_ptr<WalWriter> wal_;
  /// Bytes everything except the live WAL occupies (checkpoints, CURRENT);
  /// refreshed at open and after each checkpoint.
  uint64_t checkpoint_bytes_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t appends_since_checkpoint_ = 0;
  uint64_t quota_rejections_ = 0;
};

/// The server-level half: the MANIFEST log of ATTACH/DETACH events (with
/// their full load params) and the factory for per-tenant directories.
/// Thread-safe. A default-constructed / empty-dir instance is the disabled
/// null object: enabled() is false and every Log* is a no-op.
class ServerDurability {
 public:
  /// Opens <dir>/MANIFEST, replaying it first: the surviving ATTACH set is
  /// exposed through recovered_tenants() for the server to re-attach. A
  /// torn manifest tail is truncated, never fatal.
  static Result<std::unique_ptr<ServerDurability>> Open(
      DurabilityOptions options);

  bool enabled() const { return !options_.dir.empty(); }
  const DurabilityOptions& options() const { return options_; }

  /// Tenants the manifest records as attached (ATTACHes without a matching
  /// DETACH), in original attach order.
  const std::vector<AttachParams>& recovered_tenants() const {
    return recovered_;
  }
  bool manifest_torn() const { return manifest_torn_; }
  uint64_t manifest_records() const;

  /// Logs an ATTACH with its full load params (synced). No-op if disabled.
  Status LogAttach(const AttachParams& params);
  /// Logs a DETACH (synced). No-op if disabled.
  Status LogDetach(const std::string& id);

  /// Opens (and recovers) tenant `id`'s TenantDurability over `catalog`.
  /// `fresh` wipes any leftover directory first — a brand-new ATTACH must
  /// not resurrect state from a crashed DETACH of the same id. Null when
  /// durability is disabled.
  Result<std::unique_ptr<TenantDurability>> OpenTenant(const std::string& id,
                                                       uint64_t disk_bytes,
                                                       Catalog* catalog,
                                                       bool fresh);

  /// Deletes tenant `id`'s durability directory (after a DETACH).
  void RemoveTenant(const std::string& id);

 private:
  explicit ServerDurability(DurabilityOptions options);

  std::string TenantDir(const std::string& id) const;

  const DurabilityOptions options_;
  std::vector<AttachParams> recovered_;
  bool manifest_torn_ = false;

  mutable std::mutex mu_;  // serializes manifest appends
  std::unique_ptr<ManifestLog> manifest_;
};

/// Manifest payload codecs (exposed for tests): "attach id=... gen=... ..."
/// and "detach id=...", values percent-escaped.
std::string EncodeAttachLine(const AttachParams& params);
std::string EncodeDetachLine(const std::string& id);
/// True on success; `is_attach` distinguishes the two record kinds (on
/// detach only params->id is filled).
bool DecodeManifestLine(const std::string& line, bool* is_attach,
                        AttachParams* params);

}  // namespace acquire

#endif  // ACQUIRE_SERVER_DURABILITY_H_
