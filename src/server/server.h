#ifndef ACQUIRE_SERVER_SERVER_H_
#define ACQUIRE_SERVER_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/durability.h"
#include "server/json.h"
#include "server/session.h"
#include "server/tenant.h"
#include "storage/wal.h"

namespace acquire {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back with
  /// port() after Start).
  int port = 0;
  /// Admission control (see SessionManagerOptions).
  size_t max_running = 0;
  size_t max_queued = 64;
  /// Deadline applied to SUBMITs that carry no timeout_ms of their own;
  /// 0 means such requests run without a deadline.
  double default_timeout_ms = 0.0;
  /// Memory budget applied to SUBMITs that carry no memory_budget_bytes of
  /// their own; 0 means such runs are unmetered.
  uint64_t default_memory_budget_bytes = 0;
  /// Result-cache byte limit (see SessionManagerOptions::cache_bytes);
  /// 0 (the default) disables the cache and in-flight deduplication.
  uint64_t cache_bytes = 0;
  /// A request line (or a partial line with no newline yet) longer than
  /// this is answered with kInvalidArgument and the connection is closed —
  /// a client streaming garbage can no longer grow the line buffer without
  /// bound. 0 disables the cap.
  size_t max_line_bytes = size_t{1} << 20;
  /// Per-connection read deadline (SO_RCVTIMEO): a connection idle for
  /// longer than this between bytes is closed (counted as idle_disconnect
  /// in STATS), so abandoned half-open connections cannot pin their
  /// serving threads forever. 0 disables the deadline.
  double idle_timeout_ms = 0.0;
  /// Global memory budget carved into per-tenant soft shares by the
  /// ResourceGovernor (weight-proportional, idle shares lent to active
  /// tenants, split across a tenant's concurrent runs). 0 disables memory
  /// governance; explicit per-request memory_budget_bytes are then used
  /// as-is, and otherwise they are clamped to the carved share.
  uint64_t global_memory_budget_bytes = 0;
  /// Durability root (<dir>/MANIFEST + one subdirectory per tenant with a
  /// write-ahead log and checkpoints). Empty (the default) disables
  /// durability: APPENDs are acked from memory only and ATTACH/DETACH do
  /// not survive a restart. Requires the mutable-catalog constructor to
  /// recover APPENDs into the default tenant.
  std::string wal_dir;
  /// When and how often logged records reach stable storage (see
  /// storage/wal.h): never, batch (default) or always.
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Checkpoint (snapshot + WAL trim) a tenant automatically after this
  /// many logged appends; 0 checkpoints only at clean shutdown.
  uint64_t checkpoint_interval_appends = 0;
};

/// TCP front end for the ACQ engine: a newline-delimited JSON protocol over
/// a shared Catalog. One JSON object per line in, one per line
/// out; requests are dispatched by their "cmd" field:
///
///   SUBMIT  {"cmd":"SUBMIT","sql":"...ACQ SQL...",
///            "gamma":?, "delta":?, "order":"auto|bfs|shell|best_first",
///            "backend":"auto|direct|cached|parallel|grid|cell_sorted",
///            "batch_explore":"auto|on|off",
///            "merge_strategy":"auto|sequential|central|tree|radix",
///            "max_explored":?, "timeout_ms":?, "wait":bool,
///            "progress":{"interval_ms":N} | true}
///           -> {"ok":true,"id":"s-1","state":...}; with "wait":true the
///           response is the terminal STATUS report instead. With the
///           result cache enabled (cache_bytes > 0), a SUBMIT matching a
///           completed run is answered from the cache (no slot consumed,
///           report byte-identical to the seeding reply) and one matching
///           an in-flight run joins it instead of re-running.
///           "progress" opts into streaming: while the run executes, the
///           server pushes {"progress":true,"id":...,...} PROGRESS frames
///           (one JSON object per line; schema in DESIGN.md §11) on this
///           connection, throttled to at most one per interval_ms
///           (integral, >= 0; 0 = one frame per drained layer; true is
///           shorthand for {"interval_ms":0}), before the single terminal
///           reply. Frames are emitted on the run thread strictly before
///           the terminal publish, so the final report is always the last
///           line of the exchange — never interleaved, never torn.
///           Streaming implies "wait" semantics; "wait":false alongside
///           "progress" is rejected. Cache-served submissions (admission
///           hits, followers, negative hits) run nothing and stream
///           nothing: their reply is the whole exchange.
///   STATUS  {"cmd":"STATUS","id":"s-1"} -> state, live progress counters
///           and, once terminal, the run report (mode, termination,
///           satisfied, answers as runnable SQL, timings).
///   CANCEL  {"cmd":"CANCEL","id":"s-1"} -> requests cooperative
///           cancellation; the run stops at its next poll with a partial
///           report.
///   STOP    {"cmd":"STOP","id":"s-1"} -> client-driven early stop ("good
///           enough"): the run stops at its next poll and finishes kDone
///           with termination "client_satisfied" and a well-formed
///           best-so-far report (a queued session resolves the same way
///           with an empty report). Unlike CANCEL the result is a success,
///           not an error; like CANCEL it accepts "wait":true to return
///           the terminal report. NotFound for unknown ids; a session
///           that is already terminal is returned unchanged.
///   STATS   {"cmd":"STATS"} -> server-wide counters and admission state.
///   FAILPOINT {"cmd":"FAILPOINT"} -> lists fault-injection sites;
///           {"cmd":"FAILPOINT","set":"name=spec;..."} arms sites (spec
///           grammar in common/failpoint.h), {"cmd":"FAILPOINT",
///           "clear":true} / {"clear":"name"} disarms. kUnsupported when
///           the build compiled failpoints out.
///   CACHE   {"cmd":"CACHE"} -> result-cache stats; {"cmd":"CACHE",
///           "clear":true} drops every entry, {"cmd":"CACHE","limit":N}
///           resizes the byte limit (0 clears and disables).
///   APPEND  {"cmd":"APPEND","table":"t","rows":[[v,...],...]} -> appends
///           rows to a catalog table (live ingestion). Values are coerced
///           against the table schema (int64 columns require integral JSON
///           numbers); the batch is all-or-nothing. Requires the
///           mutable-catalog constructor — kUnsupported otherwise. Each
///           successful batch bumps the catalog generation, so cached
///           results and negative plan-cache entries from before the
///           append are never served afterwards.
///   ATTACH  {"cmd":"ATTACH","tenant":"t1","gen":"users","rows":N,
///            "seed":S, "weight":W, "cache_bytes":N, "max_queued":N,
///            "disk_bytes":N} or
///           {"cmd":"ATTACH","tenant":"t1","loaddb":"dir"} -> attaches a
///           new tenant with its own catalog (generated, or restored from
///           a SaveCatalog directory), session manager, admission queue
///           and result-cache partition, registered with the global
///           ResourceGovernor at the given fair-share weight.
///   DETACH  {"cmd":"DETACH","tenant":"t1"} -> drains the tenant's
///           in-flight runs through the cancellation path and removes it.
///           The default tenant cannot be detached.
///   TENANTS {"cmd":"TENANTS"} -> per-tenant admission/cache/governor
///           usage plus the global slot and memory-budget state.
///
/// Multi-tenancy: SUBMIT, STATUS, CANCEL, STOP, STATS, CACHE and APPEND
/// accept an optional "tenant" field routing them to that tenant's catalog
/// and manager; absent, they address the default tenant (full wire
/// compatibility with single-tenant clients), except STATUS/CANCEL/STOP,
/// which first resolve the session id across all tenants ("t1-s-3" ids
/// carry their tenant). Each tenant's result cache is a private partition —
/// a reply can never be served across tenant ids.
///
/// Failures are {"ok":false,"code":"InvalidArgument",...,"error":"..."};
/// admission rejections use code "Unavailable" and budget-stopped runs
/// report termination "resource_exhausted". Connections are served by
/// one thread each; the runs themselves execute on the shared ThreadPool
/// under the SessionManager's admission policy.
class AcqServer {
 public:
  /// The catalog must outlive the server and must not be mutated while
  /// serving (the APPEND verb answers kUnsupported on this constructor).
  explicit AcqServer(const Catalog* catalog, ServerOptions options = {});

  /// Mutable-catalog overload: identical serving behavior, plus the APPEND
  /// verb mutates the catalog through the SessionManager's data lock. All
  /// other external mutation remains forbidden while serving.
  explicit AcqServer(Catalog* catalog, ServerOptions options = {});
  ~AcqServer();

  AcqServer(const AcqServer&) = delete;
  AcqServer& operator=(const AcqServer&) = delete;

  /// Binds 127.0.0.1:port, starts the accept loop. IOError when the socket
  /// cannot be bound.
  Status Start();

  /// Graceful half of shutdown: stops accepting new connections, then
  /// waits up to `timeout_ms` for every tenant's queued and running
  /// sessions to finish naturally (0 = no wait). Call before Stop() to let
  /// in-flight work complete instead of being cancelled.
  void Drain(double timeout_ms);

  /// Stops accepting, shuts down live connections, cancels and drains all
  /// sessions; with durability enabled, checkpoints every tenant so a
  /// clean shutdown restarts from snapshots alone. Idempotent; also run by
  /// the destructor.
  void Stop();

  /// The bound port (meaningful after Start; resolves port 0 requests).
  int port() const { return port_; }

  /// Receives PROGRESS frame lines (no trailing newline) while a streaming
  /// SUBMIT executes. Returning false signals a dead transport; frames are
  /// then dropped but the run is unaffected. An empty LineSink disables
  /// streaming for the request (frames have nowhere to go, so the sink is
  /// simply never armed).
  using LineSink = std::function<bool(const std::string&)>;

  /// Protocol entry without a socket: handles one request line and returns
  /// the response line (no trailing newline). This is exactly what each
  /// connection thread calls per line; tests use it to exercise the
  /// protocol deterministically — passing a `sink` captures the PROGRESS
  /// frames a streaming SUBMIT pushes before its terminal reply.
  std::string HandleRequestLine(const std::string& line,
                                const LineSink& sink = {});

  /// The default tenant's manager (wire-compatible single-tenant view).
  SessionManager& sessions() { return default_tenant_->manager(); }

  TenantRegistry& tenants() { return registry_; }
  ResourceGovernor& governor() { return governor_; }

 private:
  /// Replays the manifest's surviving ATTACH set at construction.
  void RecoverTenants();
  void AcceptLoop();
  void ServeConnection(size_t slot, int fd);
  /// EPIPE-safe framed send (MSG_NOSIGNAL / SO_NOSIGPIPE / SIGPIPE-ignore
  /// fallback): false closes the connection. A peer that vanished mid-reply
  /// (EPIPE/ECONNRESET) is a clean teardown; other errors count as
  /// io_errors in STATS.
  bool SendLine(int fd, const std::string& line);

  /// Routes a request to its tenant: the "tenant" field when present, the
  /// default tenant otherwise. NotFound for unknown / detached tenants.
  Result<TenantPtr> ResolveTenant(const JsonValue& request);
  /// STATUS/CANCEL routing: explicit "tenant" field, else resolve the
  /// session id across every tenant, else the default tenant (whose Find
  /// produces the NotFound the caller expects).
  Result<TenantPtr> ResolveTenantForSession(const JsonValue& request,
                                            const std::string& session_id);

  JsonValue Dispatch(const JsonValue& request, const LineSink& sink);
  JsonValue HandleSubmit(const JsonValue& request, const LineSink& sink);
  JsonValue HandleStatus(const JsonValue& request);
  JsonValue HandleCancel(const JsonValue& request);
  JsonValue HandleStop(const JsonValue& request);
  JsonValue HandleStats(const JsonValue& request);
  JsonValue HandleFailpoint(const JsonValue& request);
  JsonValue HandleCache(const JsonValue& request);
  JsonValue HandleAppend(const JsonValue& request);
  JsonValue HandleAttach(const JsonValue& request);
  JsonValue HandleDetach(const JsonValue& request);
  JsonValue HandleTenants();

  const ServerOptions options_;
  /// Destruction order: the governor must outlive the registry (every
  /// manager deregisters during registry teardown), and the durability
  /// manifest must outlive every tenant's log, so both are declared before
  /// the registry.
  ResourceGovernor governor_;
  /// Never null once constructed; disabled (enabled() == false) when
  /// wal_dir is empty or the directory could not be opened.
  std::unique_ptr<ServerDurability> durability_;
  TenantRegistry registry_;
  TenantPtr default_tenant_;

  /// Connection-level hardening counters (the session-level ones live in
  /// ServerCounters); surfaced by STATS.
  std::atomic<uint64_t> oversize_lines_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
  std::atomic<uint64_t> io_errors_{0};
  /// PROGRESS frames dropped by the server.progress_emit failpoint or a
  /// dead sink — the run and its final report are unaffected either way.
  std::atomic<uint64_t> progress_drops_{0};

  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;  // under stop_mu_
  bool started_ = false;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;  // slot -> fd; -1 once the owner closed it
  std::vector<std::thread> conn_threads_;
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_SERVER_H_
