#include "server/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace acquire {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  assert(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_string() ? v->string_ : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_bool() ? v->bool_ : fallback;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no infinity/NaN; the engine's unreachable sentinels reach
    // the wire as null.
    *out += "null";
    return;
  }
  double integral;
  if (std::modf(d, &integral) == 0.0 && std::fabs(d) < 1e15) {
    *out += StringFormat("%.0f", d);
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  double parsed = std::strtod(buf, nullptr);
  if (parsed == d) {
    char shorter[32];
    for (int prec = 15; prec <= 16; ++prec) {
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
      if (std::strtod(shorter, nullptr) == d) {
        *out += shorter;
        return;
      }
    }
  }
  *out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(number_, out);
      break;
    case Kind::kString:
      AppendEscaped(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser. `pos` tracks the byte offset for error
/// messages; depth is bounded so hostile input cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue v;
    ACQ_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StringFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + literal + "'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        ACQ_RETURN_IF_ERROR(Expect("null"));
        *out = JsonValue::Null();
        return Status::OK();
      case 't':
        ACQ_RETURN_IF_ERROR(Expect("true"));
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        ACQ_RETURN_IF_ERROR(Expect("false"));
        *out = JsonValue::Bool(false);
        return Status::OK();
      case '"': {
        std::string s;
        ACQ_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue elem;
      ACQ_RETURN_IF_ERROR(ParseValue(&elem, depth + 1));
      out->Append(std::move(elem));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      ACQ_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      ACQ_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          uint32_t cp = 0;
          ACQ_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            ACQ_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid value");
    }
    if (text_[pos_] == '0') {
      // RFC 8259: no leading zeros ("0" is fine, "01" is not).
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      return Error("leading zero in number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    *out = JsonValue::Number(
        std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr));
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace acquire
