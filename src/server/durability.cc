#include "server/durability.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/string_util.h"

namespace acquire {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kWalFile[] = "wal.log";

/// Percent-escapes a manifest value so it embeds in "key=value" tokens
/// separated by spaces: '%', ' ', '=' and control bytes become %XX.
std::string EscapeValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (unsigned char c : value) {
    if (c == '%' || c == ' ' || c == '=' || c < 0x21 || c == 0x7f) {
      out += StringFormat("%%%02X", c);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

bool UnescapeValue(const std::string& value, std::string* out) {
  out->clear();
  out->reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '%') {
      out->push_back(value[i]);
      continue;
    }
    if (i + 2 >= value.size()) return false;  // needs two hex digits
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = hex(value[i + 1]);
    const int lo = hex(value[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

}  // namespace

std::string EncodeAttachLine(const AttachParams& params) {
  return StringFormat(
      "attach id=%s gen=%s rows=%llu seed=%llu loaddb=%s weight=%.17g "
      "max_queued=%llu cache_bytes=%lld disk_bytes=%llu",
      EscapeValue(params.id).c_str(), EscapeValue(params.generator).c_str(),
      static_cast<unsigned long long>(params.rows),
      static_cast<unsigned long long>(params.seed),
      EscapeValue(params.loaddb_dir).c_str(), params.weight,
      static_cast<unsigned long long>(params.max_queued),
      static_cast<long long>(params.cache_bytes),
      static_cast<unsigned long long>(params.disk_bytes));
}

std::string EncodeDetachLine(const std::string& id) {
  return StringFormat("detach id=%s", EscapeValue(id).c_str());
}

bool DecodeManifestLine(const std::string& line, bool* is_attach,
                        AttachParams* params) {
  const std::vector<std::string> tokens = Split(line, ' ');
  if (tokens.empty()) return false;
  const bool attach = tokens[0] == "attach";
  if (!attach && tokens[0] != "detach") return false;
  *is_attach = attach;
  *params = AttachParams{};
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].empty()) continue;
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) return false;
    const std::string key = tokens[i].substr(0, eq);
    std::string value;
    if (!UnescapeValue(tokens[i].substr(eq + 1), &value)) return false;
    if (key == "id") {
      params->id = value;
    } else if (key == "gen") {
      params->generator = value;
    } else if (key == "rows") {
      params->rows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      params->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "loaddb") {
      params->loaddb_dir = value;
    } else if (key == "weight") {
      params->weight = std::strtod(value.c_str(), nullptr);
    } else if (key == "max_queued") {
      params->max_queued = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "cache_bytes") {
      params->cache_bytes = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "disk_bytes") {
      params->disk_bytes = std::strtoull(value.c_str(), nullptr, 10);
    }
    // Unknown keys are skipped: newer manifests stay readable.
  }
  return !params->id.empty();
}

TenantDurability::TenantDurability(std::string dir,
                                   const DurabilityOptions& options,
                                   uint64_t disk_bytes)
    : dir_(std::move(dir)), options_(options), disk_limit_(disk_bytes) {}

Result<std::unique_ptr<TenantDurability>> TenantDurability::Open(
    const DurabilityOptions& options, const std::string& id,
    uint64_t disk_bytes, Catalog* catalog) {
  const fs::path dir = fs::path(options.dir) / id;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StringFormat("cannot create %s: %s", dir.c_str(),
                                        ec.message().c_str()));
  }
  std::unique_ptr<TenantDurability> d(
      new TenantDurability(dir.string(), options, disk_bytes));

  // 1. Checkpoint, when one is published and intact. Anything less than
  // intact is NotFound: the base catalog + full WAL is the fallback, so a
  // torn checkpoint can never prevent startup.
  CheckpointMeta meta;
  Status loaded = LoadCheckpoint(dir.string(), catalog, &meta);
  if (loaded.ok()) {
    d->recovery_.checkpoint_loaded = true;
    d->recovery_.checkpoint_generation = meta.generation;
  } else if (!loaded.IsNotFound()) {
    return loaded;
  }

  // 2. WAL replay on top. Records at or below the restored generation are
  // already inside the checkpoint (the crash window between checkpoint
  // publication and log trim); each applied record bumps the generation by
  // exactly 1, exactly as the live append did, so the final generation —
  // and every task fingerprint — matches the pre-crash process.
  const std::string wal_path = (dir / kWalFile).string();
  WalReplayStats replay;
  Status replayed = ReplayWal(
      wal_path,
      [&](const WalAppendRecord& record) -> Status {
        if (record.generation <= catalog->generation()) {
          ++d->recovery_.wal_skipped;
          return Status::OK();
        }
        ACQ_RETURN_IF_ERROR(catalog->AppendRows(record.table, record.rows));
        ++d->recovery_.wal_records;
        d->recovery_.wal_rows += record.rows.size();
        return Status::OK();
      },
      &replay);
  if (!replayed.ok()) {
    // An apply failure means the rebuilt base no longer matches the log
    // (e.g. the generator flags changed across the restart) — recovery
    // stops there but the server still starts, per the never-refuse rule.
    d->recovery_.apply_error = true;
    std::fprintf(stderr, "wal %s: replay stopped: %s\n", wal_path.c_str(),
                 replayed.ToString().c_str());
  }
  d->recovery_.wal_torn_tail = replay.torn_tail;

  ACQ_ASSIGN_OR_RETURN(d->wal_, WalWriter::Open(wal_path, options.fsync));
  d->checkpoint_bytes_ = DirectoryBytes(dir.string()) - d->wal_->bytes();
  return d;
}

Status TenantDurability::LogAppend(
    const Catalog& catalog, const std::string& table,
    const std::vector<std::vector<Value>>& rows) {
  WalAppendRecord record;
  record.table = table;
  record.generation = catalog.generation() + 1;
  record.rows = rows;
  std::lock_guard<std::mutex> lock(mu_);
  if (disk_limit_ != 0) {
    const uint64_t cost = WalRecordCost(record);
    if (checkpoint_bytes_ + wal_->bytes() + cost > disk_limit_) {
      ++quota_rejections_;
      return Status::ResourceExhausted(StringFormat(
          "tenant disk quota exceeded: %llu bytes on disk + %llu for this "
          "batch > disk_bytes=%llu",
          static_cast<unsigned long long>(checkpoint_bytes_ + wal_->bytes()),
          static_cast<unsigned long long>(cost),
          static_cast<unsigned long long>(disk_limit_)));
    }
  }
  return wal_->Append(record);
}

void TenantDurability::CommitApplied(const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  ++appends_since_checkpoint_;
  if (options_.checkpoint_interval_appends == 0 ||
      appends_since_checkpoint_ < options_.checkpoint_interval_appends) {
    return;
  }
  // A failed auto-checkpoint is not a failed append (the batch is applied
  // AND logged): the log simply keeps growing until the next attempt.
  Status ck = CheckpointLocked(catalog);
  if (!ck.ok()) {
    std::fprintf(stderr, "checkpoint %s: %s\n", dir_.c_str(),
                 ck.ToString().c_str());
  }
}

Status TenantDurability::Checkpoint(const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked(catalog);
}

Status TenantDurability::CheckpointLocked(const Catalog& catalog) {
  // The WAL must be durable before its records become the snapshot's
  // responsibility (a crash mid-checkpoint recovers from old snapshot +
  // full log).
  ACQ_RETURN_IF_ERROR(wal_->Sync());
  ACQ_RETURN_IF_ERROR(WriteCheckpoint(catalog, dir_));
  ACQ_RETURN_IF_ERROR(wal_->Reset());
  ++checkpoints_;
  appends_since_checkpoint_ = 0;
  checkpoint_bytes_ = DirectoryBytes(dir_) - wal_->bytes();
  return Status::OK();
}

Status TenantDurability::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_->Sync();
}

TenantDurability::Stats TenantDurability::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.wal_records = wal_->records();
  out.wal_bytes = wal_->bytes();
  out.wal_syncs = wal_->syncs();
  out.checkpoints = checkpoints_;
  out.disk_bytes = checkpoint_bytes_ + wal_->bytes();
  out.disk_limit_bytes = disk_limit_;
  out.quota_rejections = quota_rejections_;
  return out;
}

ServerDurability::ServerDurability(DurabilityOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ServerDurability>> ServerDurability::Open(
    DurabilityOptions options) {
  std::unique_ptr<ServerDurability> d(
      new ServerDurability(std::move(options)));
  if (!d->enabled()) return d;
  std::error_code ec;
  fs::create_directories(d->options_.dir, ec);
  if (ec) {
    return Status::IOError(StringFormat("cannot create %s: %s",
                                        d->options_.dir.c_str(),
                                        ec.message().c_str()));
  }
  const std::string path =
      (fs::path(d->options_.dir) / kManifestFile).string();
  std::vector<std::string> lines;
  ACQ_RETURN_IF_ERROR(
      ManifestLog::Replay(path, &lines, &d->manifest_torn_));
  for (const std::string& line : lines) {
    bool is_attach = false;
    AttachParams params;
    if (!DecodeManifestLine(line, &is_attach, &params)) {
      std::fprintf(stderr, "manifest %s: skipping malformed line '%s'\n",
                   path.c_str(), line.c_str());
      continue;
    }
    if (is_attach) {
      d->recovered_.push_back(std::move(params));
    } else {
      for (auto it = d->recovered_.begin(); it != d->recovered_.end(); ++it) {
        if (it->id == params.id) {
          d->recovered_.erase(it);
          break;
        }
      }
    }
  }
  ACQ_ASSIGN_OR_RETURN(d->manifest_,
                       ManifestLog::Open(path, d->options_.fsync));
  return d;
}

uint64_t ServerDurability::manifest_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_ != nullptr ? manifest_->records() : 0;
}

Status ServerDurability::LogAttach(const AttachParams& params) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_->Append(EncodeAttachLine(params));
}

Status ServerDurability::LogDetach(const std::string& id) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_->Append(EncodeDetachLine(id));
}

std::string ServerDurability::TenantDir(const std::string& id) const {
  return (fs::path(options_.dir) / id).string();
}

Result<std::unique_ptr<TenantDurability>> ServerDurability::OpenTenant(
    const std::string& id, uint64_t disk_bytes, Catalog* catalog,
    bool fresh) {
  if (!enabled()) return std::unique_ptr<TenantDurability>();
  if (fresh) {
    // A brand-new ATTACH defines its own data source; leftovers from a
    // crashed DETACH of the same id must not be recovered into it.
    std::error_code ec;
    fs::remove_all(TenantDir(id), ec);
  }
  return TenantDurability::Open(options_, id, disk_bytes, catalog);
}

void ServerDurability::RemoveTenant(const std::string& id) {
  if (!enabled()) return;
  std::error_code ec;
  fs::remove_all(TenantDir(id), ec);
}

}  // namespace acquire
