#ifndef ACQUIRE_SERVER_SESSION_H_
#define ACQUIRE_SERVER_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.h"
#include "core/processor.h"
#include "core/run_context.h"
#include "server/result_cache.h"
#include "storage/catalog.h"

namespace acquire {

/// Lifecycle of one submitted ACQ. Terminal states are kDone (a report is
/// available — including deadline-exceeded and truncated runs, whose
/// reports are partial; see AcquireResult::termination), kCancelled (a
/// CANCEL was observed, queued or mid-run; a mid-run cancel still carries
/// the partial report) and kFailed (bind/plan/execution error).
enum class SessionState { kQueued, kRunning, kDone, kCancelled, kFailed };

const char* SessionStateToString(SessionState state);

/// One admitted ACQ request: the SQL text, the per-run options, the
/// RunContext the drivers poll, and — once terminal — the outcome.
/// State transitions happen under `mu` and are announced on `cv`.
class Session {
 public:
  Session(std::string id, std::string sql, AcquireOptions options);

  const std::string& id() const { return id_; }
  const std::string& sql() const { return sql_; }

  /// Thread-safe snapshot accessors.
  SessionState state() const;
  /// Blocks until the session reaches a terminal state.
  void WaitDone();

  /// Requests cooperative cancellation; the run (if any) observes it at
  /// its next poll. Returns false when the session was already terminal.
  bool RequestCancel();

  /// Client-driven early stop (the STOP verb): the run observes it at its
  /// next poll and finishes kDone with termination "client_satisfied" and a
  /// well-formed best-so-far report — unlike RequestCancel, whose report is
  /// the error-shaped "cancelled". Returns false when already terminal.
  bool RequestClientStop();

  /// Consistent copy for protocol rendering: terminal details (error /
  /// outcome / task for answer rendering) plus live progress counters, which
  /// are meaningful for running sessions too.
  struct View {
    SessionState state = SessionState::kQueued;
    Status error;
    bool has_outcome = false;
    AcqOutcome outcome;
    std::shared_ptr<const AcqTask> task;
    /// Set when this session was served from the result cache (an admission
    /// hit, an in-flight follower, or the seeding leader itself): the
    /// pre-rendered report to reply with, byte-identical across all of them.
    CachedResultPtr cached;
    double wall_ms = 0.0;
    uint64_t queries_explored = 0;
    uint64_t cell_queries = 0;
  };
  View Snapshot() const;

  RunContext& ctx() { return ctx_; }

 private:
  friend class SessionManager;

  const std::string id_;
  const std::string sql_;
  AcquireOptions options_;  // run_ctx is pointed at ctx_ before the run
  EvalBackend backend_ = EvalBackend::kAuto;
  RunContext ctx_;
  const RunContext::Clock::time_point submitted_at_;

  /// Task fingerprint, computed at admission when the result cache is
  /// enabled and the task is cacheable; keys the cache and the in-flight
  /// dedup map. Immutable after Submit. `fp_generation_` is the catalog
  /// generation the fingerprint was computed under: a session that runs
  /// after an APPEND moved the catalog past it computes a fresh answer but
  /// must NOT seed the cache under the stale fingerprint.
  TaskFingerprint fp_{};
  bool has_fp_ = false;
  uint64_t fp_generation_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SessionState state_ = SessionState::kQueued;
  Status error_;                            // when kFailed
  AcqOutcome outcome_;                      // when kDone / mid-run kCancelled
  bool has_outcome_ = false;                // outcome_ is meaningful
  std::shared_ptr<AcqTask> task_;           // keeps rendering inputs alive
  CachedResultPtr cached_;                  // cache-served reply (see View)
  double wall_ms_ = 0.0;                    // submit -> terminal
};

using SessionPtr = std::shared_ptr<Session>;

/// Server-wide monotonic counters, readable while serving (STATS verb).
struct ServerCounters {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // admission queue full
  uint64_t completed = 0;  // kDone with termination == completed
  uint64_t truncated = 0;  // kDone with termination == truncated
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t client_satisfied = 0;  // kDone with termination == client_satisfied
  uint64_t resource_exhausted = 0;  // kDone with termination == resource_exhausted
  uint64_t failed = 0;
  /// PROGRESS frames emitted by this manager's runs (throttle-passed layer
  /// drains handed to the session's progress callback; a frame the server
  /// later drops via the server.progress_emit failpoint still counts here).
  uint64_t progress_frames = 0;
  /// Per-run ExecStats / result counters folded together across finished
  /// runs — the serving system's cumulative work.
  uint64_t queries_explored = 0;
  uint64_t cell_queries = 0;
  uint64_t eval_queries = 0;    // evaluation-layer box queries
  uint64_t tuples_scanned = 0;
  uint64_t run_micros = 0;      // summed AcquireResult::elapsed_ms
  /// Submissions that joined an identical in-flight task instead of
  /// running (they wait on the leader's result). Cache-served sessions —
  /// admission hits and followers — bump only `submitted` plus this /
  /// the cache's hit counter: the termination counters above count
  /// executed runs.
  uint64_t cache_inflight_joins = 0;
  /// Submissions short-circuited to kFailed by the negative cache (a plan
  /// that already failed deterministically >= kNegativeThreshold times);
  /// they bump only `submitted` plus this — no slot, no run, no `failed`.
  uint64_t cache_negative_served = 0;
  /// How finished runs' batched layers published their Eq. 17 merges
  /// (ExecStats::merge_layers_*, folded like the counters above).
  uint64_t merge_layers_central = 0;
  uint64_t merge_layers_tree = 0;
  uint64_t merge_layers_radix = 0;
  uint64_t merge_layers_sequential = 0;
  /// Index-build work folded across finished runs (ExecStats::prepare_ms in
  /// microseconds) plus delta-maintenance activity (rows staged into index
  /// delta buffers and buffer-into-base merges). STATS-only, like the merge
  /// tallies above.
  uint64_t prepare_micros = 0;
  uint64_t delta_rows = 0;
  uint64_t delta_merges = 0;
  /// Live ingestion through SessionManager::AppendRows: successful APPEND
  /// batches and the rows they landed.
  uint64_t appends = 0;
  uint64_t append_rows = 0;
};

class ResourceGovernor;

/// Write-ahead durability seam for live ingestion (implemented by
/// TenantDurability in server/durability.h; null = no durability). Both
/// methods run under the manager's exclusive data lock, already serialized
/// against every append and catalog read, so implementations need no
/// locking of their own against the append path.
class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;

  /// Called after the batch validated (Catalog::ValidateAppend passed) and
  /// before it applies. An error fails the APPEND with nothing applied and
  /// nothing retained in the log — kResourceExhausted is the disk-quota
  /// rejection. `catalog` is the pre-apply state (its generation + 1 is the
  /// generation the batch will create).
  virtual Status LogAppend(const Catalog& catalog, const std::string& table,
                           const std::vector<std::vector<Value>>& rows) = 0;

  /// Called after the batch applied and the generation bumped. Must not
  /// fail the append (it already happened); implementations checkpoint here
  /// when their append interval elapses.
  virtual void CommitApplied(const Catalog& catalog) = 0;
};

/// Streaming opt-in for one submission (SUBMIT "progress":{...}): when
/// `enabled`, the manager arms the session context's throttled ProgressSink
/// before launch, so frames cover the run from its first drained layer. The
/// callback runs on the run thread between layers — it must be fast and must
/// not call back into the manager (it may touch the session it is given).
/// Cache-served submissions (admission hits, in-flight followers, negative
/// hits) execute nothing and therefore stream nothing: the final reply is
/// their only frame.
struct SessionProgress {
  std::function<void(const Session&, const ProgressSnapshot&)> callback;
  double interval_ms = 0.0;  // <= 0: one frame per drained layer
  bool enabled = false;
};

struct SessionManagerOptions {
  /// Runs executing concurrently on the shared thread pool. 0 sizes to
  /// half the pool (at least 1): each run fans its own layer batches out
  /// across the same pool, so saturating it with run bodies would leave no
  /// headroom for the data-parallel leaves.
  size_t max_running = 0;
  /// Admitted-but-not-yet-running bound; beyond it SUBMIT is rejected
  /// with kUnavailable (backpressure instead of unbounded memory).
  size_t max_queued = 64;
  /// Result-cache byte limit. 0 (the default) disables both the cache and
  /// the in-flight deduplication of identical tasks, preserving the
  /// pre-cache serving behavior exactly.
  uint64_t cache_bytes = 0;
  /// Session-id prefix ("s-" yields the historical ids; tenants use
  /// "<tenant>-s-"), so ids stay unique — and routable — across managers.
  std::string session_prefix = "s-";
  /// When set, run slots are granted by this governor (global fair-share
  /// across all managers registered with it) instead of the local
  /// running_ < max_running check, queued sessions are dispatched by its
  /// weighted schedule rather than pulled directly by the finishing
  /// runner, and per-run memory budgets are clamped to the tenant's carved
  /// share. The governor must outlive the manager and the manager must be
  /// Register()ed before serving. Null (the default) preserves the
  /// standalone single-manager behavior exactly.
  ResourceGovernor* governor = nullptr;
  /// When set, AppendRows follows write-ahead discipline: validate, log
  /// through the hook (fsynced per its policy), apply, ack — so every acked
  /// batch is recoverable and a rejected one leaves the log byte-identical.
  /// Must outlive the manager. Null (the default) = in-memory only.
  DurabilityHook* durability = nullptr;
};

/// Binds sessions against a shared Catalog and schedules them
/// onto the process-wide persistent ThreadPool with bounded admission:
/// at most `max_running` run bodies occupy pool tasks at once, at most
/// `max_queued` admitted requests wait behind them, and everything beyond
/// that is rejected immediately.
///
/// Catalog mutation: with the const-catalog constructor the catalog must
/// not be mutated while a manager serves from it. The mutable-catalog
/// constructor additionally enables AppendRows (live ingestion), which is
/// the ONLY permitted mutation: it takes the manager's data lock
/// exclusively, so it serializes against every catalog-reading section
/// (admission fingerprinting and run bodies, which hold the lock shared).
/// Each successful append bumps the catalog generation, so fingerprinted
/// cache entries and negative plan-cache entries from before the append
/// can never be served afterwards.
///
/// With cache_bytes > 0 admission additionally consults a fingerprinted
/// result cache: a submission matching a completed run finishes immediately
/// from the cached reply (no slot, no queue), and one matching a task still
/// in flight joins it as a follower, waiting on the leader's session
/// instead of re-running. Only completed runs are inserted; when a leader
/// ends any other way (failed / cancelled / truncated / exhausted) its
/// oldest follower is promoted to run fresh on the same slot, so a poisoned
/// leader never poisons its duplicates.
class SessionManager {
 public:
  SessionManager(const Catalog* catalog, SessionManagerOptions options);

  /// Mutable-catalog overload: identical serving behavior, plus AppendRows
  /// becomes available.
  SessionManager(Catalog* catalog, SessionManagerOptions options);

  /// Cancels everything and waits for in-flight runs to drain.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admission: schedules or queues the request, or fails with
  /// kUnavailable when the queue is full. `options.run_ctx` is overwritten
  /// to point at the session's own context. `backend` (when not kAuto)
  /// overrides the planned task's evaluation backend. `progress` (when
  /// enabled) streams throttled per-layer ProgressSnapshots to its callback
  /// while the run executes (see SessionProgress).
  Result<SessionPtr> Submit(std::string sql, AcquireOptions options,
                            double timeout_ms,
                            EvalBackend backend = EvalBackend::kAuto,
                            SessionProgress progress = {});

  /// NotFound for unknown ids.
  Result<SessionPtr> Find(const std::string& id) const;

  /// Cancels a session by id: a queued session finishes as kCancelled
  /// without running; a running one is interrupted at its next poll.
  Result<SessionPtr> Cancel(const std::string& id);

  /// Client-driven early stop by id ("good enough"): a running session is
  /// interrupted at its next poll and finishes kDone with termination
  /// "client_satisfied" and its best-so-far report; a queued one resolves
  /// the same way with an empty report, without running. Unlike Cancel, an
  /// in-flight follower is left attached: its leader keeps running and the
  /// follower still gets the full result (a strictly better answer than any
  /// partial). NotFound for unknown ids; a terminal session is returned
  /// unchanged.
  Result<SessionPtr> Stop(const std::string& id);

  /// Cancels every non-terminal session and blocks until no session is
  /// queued or running (pool tasks all returned — nothing leaks).
  void Shutdown();

  ServerCounters counters() const;
  size_t num_running() const;
  size_t num_queued() const;
  /// The resolved concurrent-run bound (options.max_running with 0
  /// expanded to half the pool); under a governor this also caps the
  /// tenant's share of the global slots.
  size_t max_running() const { return max_running_; }

  /// Governed dispatch (called by the ResourceGovernor only, never with
  /// the governor lock held): launches the oldest queued session on the
  /// slot the governor just granted. False when the queue is empty — the
  /// caller rolls the tentative grant back. Must not be called while any
  /// lock of this manager is held.
  bool DispatchOneQueued();

  /// Appends `rows` to `table` atomically under the exclusive data lock:
  /// no fingerprint is computed and no run plans/executes while the catalog
  /// moves. Unsupported when the manager was constructed over a const
  /// catalog; otherwise forwards Catalog::AppendRows (all-or-nothing per
  /// batch) and, on success, bumps the appends / append_rows counters.
  /// Running sessions finish against the snapshot they started from; the
  /// generation bump makes their cached renders unseedable (stale) and
  /// invalidates prior cache/negative entries for future submissions.
  Status AppendRows(const std::string& table,
                    const std::vector<std::vector<Value>>& rows);

  const Catalog& catalog() const { return *catalog_; }

  /// The result cache (disabled when cache_bytes was 0; see ResultCache).
  ResultCache& cache() { return cache_; }

 private:
  /// One fingerprint's in-flight task: the session executing it and the
  /// duplicate submissions waiting on its result. Guarded by mu_.
  struct Inflight {
    SessionPtr leader;
    std::vector<SessionPtr> followers;
  };

  /// Requires mu_. Mints the next session id under options_.session_prefix.
  std::string NextIdLocked();

  /// Parses/binds `sql` and fingerprints the task. False (leaving *fp
  /// untouched) when the SQL does not parse/bind or the task is
  /// uncacheable — the submission then takes the plain uncached path.
  bool ComputeFingerprint(const std::string& sql,
                          const AcquireOptions& options, EvalBackend backend,
                          TaskFingerprint* fp) const;

  /// Publishes `session` terminal kDone served from `cached` (counters
  /// adopted, waiters notified). Touches only the session.
  void PublishFromCache(const SessionPtr& session,
                        const CachedResultPtr& cached);
  /// Publishes kCancelled if not already terminal. Touches only the session.
  void PublishCancelled(const SessionPtr& session);

  /// Requires mu_. Resolves the in-flight entry led by `session`:
  /// completed (cached != null) -> insert into the cache and return the
  /// followers to serve from it; otherwise promote the oldest follower as
  /// the new leader via *promoted (it takes over the caller's runner slot)
  /// — unless shutting down, in which case every follower is returned in
  /// *cancel with its `cancelled` counter already bumped (after the slot
  /// release the manager may be destroyed, so counters must move here).
  void ResolveInflightLocked(const SessionPtr& session,
                             const CachedResultPtr& cached,
                             SessionPtr* promoted,
                             std::vector<SessionPtr>* serve,
                             std::vector<SessionPtr>* cancel);

  /// Submits a runner-loop pool task for `session`; the runner keeps its
  /// running slot and drains the queue before releasing it.
  void Launch(SessionPtr session);
  /// Runs one session to its terminal state. Hands back the next queued
  /// session (or releases the running slot) in `*next` BEFORE publishing
  /// the terminal state, so a waiter released by the notify observes the
  /// slot already accounted for in num_running()/num_queued().
  void RunSession(const SessionPtr& session, SessionPtr* next);

  /// Hands the slot bookkeeping of a finishing (or enqueue-failed) runner
  /// to the next owner: a promoted follower wins the slot directly;
  /// otherwise an ungoverned manager pulls its own queue head or releases
  /// the slot, while a governed one returns the slot to the governor —
  /// which re-dispatches across every tenant — and then decrements
  /// running_. Takes mu_ (and, governed, calls the governor, so mu_ must
  /// not be held on entry). After it returns with *next == nullptr the
  /// manager may be destroyed by Shutdown: callers may touch only
  /// sessions past that point.
  void FinishSlot(const SessionPtr& session, const CachedResultPtr& cached,
                  SessionPtr* next, std::vector<SessionPtr>* serve,
                  std::vector<SessionPtr>* cancel);

  const Catalog* catalog_;
  /// Non-null only via the mutable-catalog constructor; aliases catalog_.
  Catalog* mutable_catalog_ = nullptr;
  const SessionManagerOptions options_;
  const size_t max_running_;
  /// Aliases options_.governor; null = standalone (ungoverned) manager.
  ResourceGovernor* const governor_;

  /// Reader/writer gate between catalog readers and AppendRows. Shared:
  /// Submit's fingerprint/negative-lookup section and RunSession's
  /// plan/run/render section. Exclusive: AppendRows. Lock order: data_mu_
  /// strictly before mu_ / counters_mu_; nothing acquires data_mu_ while
  /// holding either.
  mutable std::shared_mutex data_mu_;

  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  // signalled when running+queued drops
  uint64_t next_id_ = 1;
  size_t running_ = 0;
  bool shutdown_ = false;
  std::deque<SessionPtr> queue_;
  std::map<std::string, SessionPtr> sessions_;
  std::unordered_map<TaskFingerprint, Inflight, TaskFingerprintHash>
      inflight_;  // under mu_

  mutable std::mutex counters_mu_;
  ServerCounters counters_;
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_SESSION_H_
