#ifndef ACQUIRE_SERVER_RESULT_CACHE_H_
#define ACQUIRE_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/fingerprint.h"
#include "core/processor.h"
#include "server/json.h"

namespace acquire {

/// Renders the protocol "report" object for a terminal outcome — the shared
/// serializer behind STATUS/SUBMIT replies and the result cache, so a cached
/// reply is byte-identical to the reply the seeding run produced. `task` is
/// the session's planned task (may be null when planning never ran);
/// contracted outcomes render against their contraction task so the answer
/// SQL is runnable.
JsonValue BuildReportJson(const AcqOutcome& outcome, const AcqTask* task,
                          double wall_ms);

/// One completed run's reply, shared by the run's own session, its
/// in-flight followers, and every later cache hit. The report is rendered
/// exactly once (wall_ms and elapsed_ms included), which is what makes
/// cached replies bit-exact. Immutable after construction.
struct CachedResult {
  JsonValue report;
  /// The seeding run's RunContext progress counters — cache-served sessions
  /// adopt them so the reply envelope matches the fresh one too.
  uint64_t queries_explored = 0;
  uint64_t cell_queries = 0;
  /// Approximate retained footprint, charged against the byte limit.
  size_t bytes = 0;
};
using CachedResultPtr = std::shared_ptr<const CachedResult>;

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t limit_bytes = 0;
};

/// Sharded, byte-bounded LRU over completed-run replies, keyed by the
/// 128-bit task fingerprint (core/fingerprint.h). Thread-safe: each shard
/// has its own mutex and LRU list, hit/miss/eviction counters are atomics,
/// and entries are immutable shared_ptrs, so a Lookup winner keeps its
/// result alive across a concurrent Clear or eviction.
///
/// A limit of 0 disables the cache entirely: Lookup always misses (without
/// counting), Insert is a no-op, and nothing is retained. Shrinking the
/// limit evicts immediately.
class ResultCache {
 public:
  explicit ResultCache(uint64_t limit_bytes = 0);

  bool enabled() const {
    return limit_.load(std::memory_order_relaxed) > 0;
  }
  uint64_t limit_bytes() const {
    return limit_.load(std::memory_order_relaxed);
  }
  /// 0 clears and disables. Shrinking evicts down to the new limit.
  void set_limit_bytes(uint64_t bytes);

  /// Counted hit (entry moved to the front of its shard's LRU) or miss.
  CachedResultPtr Lookup(const TaskFingerprint& fp);

  /// Inserts/refreshes, then evicts least-recently-used entries while the
  /// shard is over its share of the byte limit. No-op when disabled.
  void Insert(const TaskFingerprint& fp, CachedResultPtr result);

  /// Drops every entry. Monotonic counters (hits/misses/evictions) survive;
  /// cleared entries do not count as evictions.
  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    TaskFingerprint fp;
    CachedResultPtr result;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<TaskFingerprint, std::list<Entry>::iterator,
                       TaskFingerprintHash>
        index;
    uint64_t bytes = 0;
  };
  static constexpr size_t kShards = 8;

  Shard& ShardFor(const TaskFingerprint& fp) {
    // hi is already avalanche-mixed; its low bits pick the shard.
    return shards_[fp.hi & (kShards - 1)];
  }
  /// Requires shard.mu. Evicts from the LRU tail while over budget.
  void EvictLocked(Shard* shard);

  std::atomic<uint64_t> limit_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  Shard shards_[kShards];
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_RESULT_CACHE_H_
