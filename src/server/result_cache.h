#ifndef ACQUIRE_SERVER_RESULT_CACHE_H_
#define ACQUIRE_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "core/fingerprint.h"
#include "core/processor.h"
#include "server/json.h"

namespace acquire {

/// Renders the protocol "report" object for a terminal outcome — the shared
/// serializer behind STATUS/SUBMIT replies and the result cache, so a cached
/// reply is byte-identical to the reply the seeding run produced. `task` is
/// the session's planned task (may be null when planning never ran);
/// contracted outcomes render against their contraction task so the answer
/// SQL is runnable.
JsonValue BuildReportJson(const AcqOutcome& outcome, const AcqTask* task,
                          double wall_ms);

/// One completed run's reply, shared by the run's own session, its
/// in-flight followers, and every later cache hit. The report is rendered
/// exactly once (wall_ms and elapsed_ms included), which is what makes
/// cached replies bit-exact. Immutable after construction.
struct CachedResult {
  JsonValue report;
  /// The seeding run's RunContext progress counters — cache-served sessions
  /// adopt them so the reply envelope matches the fresh one too.
  uint64_t queries_explored = 0;
  uint64_t cell_queries = 0;
  /// Approximate retained footprint, charged against the byte limit.
  size_t bytes = 0;
  /// Observed compute cost of the seeding run (wall milliseconds); feeds
  /// cost-aware eviction. 0 (unknown) makes the entry evict like pure LRU.
  double cost_ms = 0.0;
  /// Catalog generation the seeding run planned against. The fingerprint
  /// already folds the generation in, so lookups can never cross
  /// generations; this copy exists for persistence (LoadFromFile drops
  /// entries whose generation no longer matches the live catalog).
  uint64_t generation = 0;
};
using CachedResultPtr = std::shared_ptr<const CachedResult>;

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t limit_bytes = 0;
  /// Negative cache (repeatedly-failing plans; see RecordFailure).
  uint64_t negative_hits = 0;
  uint64_t negative_entries = 0;
};

/// Sharded, byte-bounded cache over completed-run replies, keyed by the
/// 128-bit task fingerprint (core/fingerprint.h). Thread-safe: each shard
/// has its own mutex and recency list, hit/miss/eviction counters are
/// atomics, and entries are immutable shared_ptrs, so a Lookup winner keeps
/// its result alive across a concurrent Clear or eviction.
///
/// Eviction is cost-aware (GreedyDual-Size-Frequency): each entry carries
/// priority = shard_clock + cost_ms * hits / bytes, the minimum-priority
/// entry is evicted first, and the shard clock advances to each victim's
/// priority so long-idle expensive entries age out instead of pinning the
/// cache. A 1 ms origin-satisfies reply and a 30 s search reply therefore
/// stop being eviction-equals. Entries with unknown cost (cost_ms == 0) tie
/// on priority and fall back to least-recently-used order.
///
/// A limit of 0 disables the cache entirely: Lookup always misses (without
/// counting), Insert is a no-op, and nothing is retained. Shrinking the
/// limit evicts immediately.
///
/// The cache also keeps a small negative side-table for repeatedly-failing
/// plans, keyed by a caller-computed hash (SQL text + catalog generation,
/// NOT the task fingerprint — failing plans usually cannot be fingerprinted
/// at all). Only deterministic failures belong in it; after
/// kNegativeThreshold identical failures LookupFailure serves the error
/// without re-planning.
class ResultCache {
 public:
  explicit ResultCache(uint64_t limit_bytes = 0);

  bool enabled() const {
    return limit_.load(std::memory_order_relaxed) > 0;
  }
  uint64_t limit_bytes() const {
    return limit_.load(std::memory_order_relaxed);
  }
  /// 0 clears and disables. Shrinking evicts down to the new limit.
  void set_limit_bytes(uint64_t bytes);

  /// Counted hit (frequency bumped, priority recomputed, entry moved to the
  /// front of its shard's recency list) or miss.
  CachedResultPtr Lookup(const TaskFingerprint& fp);

  /// Inserts/refreshes, then evicts minimum-priority entries while the
  /// shard is over its share of the byte limit. No-op when disabled.
  void Insert(const TaskFingerprint& fp, CachedResultPtr result);

  /// Identical failures before LookupFailure starts serving a key
  /// negatively.
  static constexpr uint64_t kNegativeThreshold = 2;

  /// Records one deterministic plan failure for `key`. A failure with a
  /// different status code resets the key (the plan's failure mode moved,
  /// e.g. after a catalog change the caller didn't fold into the key).
  /// No-op when the cache is disabled.
  void RecordFailure(uint64_t key, const Status& error);

  /// True (and counted as a negative hit) when `key` has accumulated at
  /// least kNegativeThreshold identical failures; *error receives the
  /// recorded status. Unknown / below-threshold keys and a disabled cache
  /// return an uncounted false.
  bool LookupFailure(uint64_t key, Status* error);

  /// Drops every entry, positive and negative. Monotonic counters
  /// (hits/misses/evictions) survive; cleared entries do not count as
  /// evictions.
  void Clear();

  ResultCacheStats stats() const;

  /// Writes every positive entry to `path` in the versioned "acq-cache-v2"
  /// text format (negative entries are deliberately not persisted — they
  /// guard live re-planning, which a restart re-establishes cheaply).
  /// Crash-safe: the snapshot is staged at `path`.tmp, fsynced and renamed
  /// into place, and carries a trailing CRC line over the body so
  /// LoadFromFile can reject a torn or bit-rotted file outright.
  /// Snapshot semantics per shard; concurrent inserts may or may not land.
  Status SaveToFile(const std::string& path) const;

  /// Loads a SaveToFile snapshot, inserting entries via the normal Insert
  /// path (so the byte limit applies). The header and trailing CRC are
  /// verified before anything is inserted — a truncated, torn or corrupted
  /// snapshot is rejected whole (ParseError), never half-loaded. Entries
  /// recorded under a catalog generation other than `current_generation`
  /// are stale — the data they answered for has changed identity — and are
  /// dropped. Returns the count of loaded entries via `loaded`/`dropped`
  /// when non-null. NotFound when `path` does not exist (cold start),
  /// IOError/ParseError on corruption.
  Status LoadFromFile(const std::string& path, uint64_t current_generation,
                      size_t* loaded = nullptr, size_t* dropped = nullptr);

 private:
  struct Entry {
    TaskFingerprint fp;
    CachedResultPtr result;
    uint64_t freq = 1;       // lookups since insertion (plus the insert)
    double priority = 0.0;   // GDSF priority at last touch
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used (priority tiebreak)
    std::unordered_map<TaskFingerprint, std::list<Entry>::iterator,
                       TaskFingerprintHash>
        index;
    uint64_t bytes = 0;
    double clock = 0.0;  // rises to each victim's priority (aging)
  };
  static constexpr size_t kShards = 8;
  /// Negative side-table bound; tiny on purpose (it only needs to cover the
  /// recently-failing plans a client keeps retrying).
  static constexpr size_t kMaxNegativeEntries = 256;

  struct NegativeEntry {
    Status error;
    uint64_t failures = 0;
  };

  Shard& ShardFor(const TaskFingerprint& fp) {
    // hi is already avalanche-mixed; its low bits pick the shard.
    return shards_[fp.hi & (kShards - 1)];
  }
  static double PriorityOf(const Shard& shard, const CachedResult& result,
                           uint64_t freq);
  /// Requires shard.mu. Evicts minimum-priority entries while over budget.
  void EvictLocked(Shard* shard);

  std::atomic<uint64_t> limit_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> negative_hits_{0};
  Shard shards_[kShards];

  mutable std::mutex negative_mu_;
  std::unordered_map<uint64_t, NegativeEntry> negative_;
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_RESULT_CACHE_H_
