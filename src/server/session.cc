#include "server/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "exec/thread_pool.h"
#include "server/tenant.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace acquire {

namespace {

using Clock = std::chrono::steady_clock;

bool IsTerminal(SessionState state) {
  return state == SessionState::kDone || state == SessionState::kCancelled ||
         state == SessionState::kFailed;
}

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Negative-cache key: the raw SQL text plus the catalog generation (a
/// reload that could make the plan succeed invalidates the key). NOT the
/// task fingerprint — plans that fail usually cannot be fingerprinted.
/// Options are deliberately excluded: only parse/bind failures are
/// recorded, and those depend on nothing but (sql, catalog).
uint64_t NegativeKey(const Catalog& catalog, const std::string& sql) {
  uint64_t h = 1469598103934665603ULL ^ catalog.generation();
  for (unsigned char c : sql) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Only failures that are pure functions of (sql, catalog) may be served
/// from the negative cache. Transient conditions (unavailable, resource
/// exhausted, internal, IO) must retry for real.
bool IsDeterministicPlanFailure(const Status& error) {
  switch (error.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kNotImplemented:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kUnsupported:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* SessionStateToString(SessionState state) {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

Session::Session(std::string id, std::string sql, AcquireOptions options)
    : id_(std::move(id)),
      sql_(std::move(sql)),
      options_(std::move(options)),
      submitted_at_(Clock::now()) {
  options_.run_ctx = &ctx_;
}

SessionState Session::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void Session::WaitDone() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return IsTerminal(state_); });
}

bool Session::RequestCancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (IsTerminal(state_)) return false;
  }
  ctx_.RequestCancel();
  return true;
}

bool Session::RequestClientStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (IsTerminal(state_)) return false;
  }
  ctx_.RequestClientStop();
  return true;
}

Session::View Session::Snapshot() const {
  View view;
  {
    std::lock_guard<std::mutex> lock(mu_);
    view.state = state_;
    view.error = error_;
    view.has_outcome = has_outcome_;
    if (has_outcome_) view.outcome = outcome_;
    view.task = task_;
    view.cached = cached_;
    view.wall_ms = wall_ms_;
  }
  view.queries_explored = ctx_.queries_explored.load(std::memory_order_relaxed);
  view.cell_queries = ctx_.cell_queries.load(std::memory_order_relaxed);
  return view;
}

SessionManager::SessionManager(const Catalog* catalog,
                               SessionManagerOptions options)
    : catalog_(catalog),
      options_(options),
      max_running_(options.max_running != 0
                       ? options.max_running
                       : std::max<size_t>(
                             1, ThreadPool::Shared().num_threads() / 2)),
      governor_(options.governor),
      cache_(options.cache_bytes) {}

SessionManager::SessionManager(Catalog* catalog, SessionManagerOptions options)
    : SessionManager(static_cast<const Catalog*>(catalog), options) {
  mutable_catalog_ = catalog;
}

SessionManager::~SessionManager() { Shutdown(); }

std::string SessionManager::NextIdLocked() {
  return StringFormat("%s%llu", options_.session_prefix.c_str(),
                      static_cast<unsigned long long>(next_id_++));
}

Status SessionManager::AppendRows(
    const std::string& table, const std::vector<std::vector<Value>>& rows) {
  if (mutable_catalog_ == nullptr) {
    return Status::Unsupported(
        "catalog is read-only (manager was constructed over a const "
        "catalog)");
  }
  {
    // Exclusive against every catalog-reading shared section: no admission
    // fingerprint and no run body observes a half-applied batch, and a
    // batch never lands between a run's execution and its cache render.
    std::unique_lock<std::shared_mutex> data_lock(data_mu_);
    if (rows.empty() || options_.durability == nullptr) {
      // Empty batches change nothing (no generation bump), so they are
      // never logged; an empty-batch APPEND before and after leaves the
      // log byte-identical.
      ACQ_RETURN_IF_ERROR(mutable_catalog_->AppendRows(table, rows));
    } else {
      // Write-ahead discipline: validate -> log (synced per policy) ->
      // apply -> ack. A batch that fails validation or the log never
      // touches the catalog and leaves the log byte-identical; a logged
      // batch cannot fail to apply (ValidateAppend passed under this same
      // exclusive lock).
      ACQ_RETURN_IF_ERROR(mutable_catalog_->ValidateAppend(table, rows));
      ACQ_RETURN_IF_ERROR(
          options_.durability->LogAppend(*mutable_catalog_, table, rows));
      ACQ_RETURN_IF_ERROR(mutable_catalog_->AppendRows(table, rows));
      options_.durability->CommitApplied(*mutable_catalog_);
    }
  }
  std::lock_guard<std::mutex> clock(counters_mu_);
  ++counters_.appends;
  counters_.append_rows += rows.size();
  return Status::OK();
}

Result<SessionPtr> SessionManager::Submit(std::string sql,
                                          AcquireOptions options,
                                          double timeout_ms,
                                          EvalBackend backend,
                                          SessionProgress progress) {
  if (ACQ_FAILPOINT("server.admit")) {
    std::lock_guard<std::mutex> clock(counters_mu_);
    ++counters_.rejected;
    return Status::Unavailable(
        "injected admission rejection (failpoint server.admit)");
  }
  // Injected fair-share admission rejection: models the governor denying a
  // tenant under cross-tenant pressure. Only meaningful for governed
  // managers; the reply surfaces as a well-formed ResourceExhausted error.
  if (governor_ != nullptr && ACQ_FAILPOINT("server.tenant_admission")) {
    std::lock_guard<std::mutex> clock(counters_mu_);
    ++counters_.rejected;
    return Status::ResourceExhausted(
        "injected tenant admission rejection "
        "(failpoint server.tenant_admission)");
  }

  // The catalog-reading part of admission — negative-cache key, fingerprint
  // and the generation it was computed under — runs inside the shared data
  // lock so a concurrent AppendRows can't move the catalog mid-read
  // (fingerprint folds the generation in; tearing the two apart would let a
  // stale fingerprint carry a fresh generation or vice versa).
  Status negative;
  bool negative_hit = false;
  TaskFingerprint fp;
  bool has_fp = false;
  uint64_t fp_generation = 0;
  {
    std::shared_lock<std::shared_mutex> data_lock(data_mu_);
    negative_hit = cache_.LookupFailure(NegativeKey(*catalog_, sql), &negative);
    if (!negative_hit) {
      // Fingerprint before taking mu_: parsing/binding is pure and touches
      // only the catalog (read-locked here). Any failure just means
      // "uncacheable" and the submission proceeds exactly as it did before
      // the cache existed.
      has_fp =
          cache_.enabled() && ComputeFingerprint(sql, options, backend, &fp);
      fp_generation = catalog_->generation();
    }
  }

  // Negative cache: a plan that already failed deterministically (same SQL,
  // same catalog generation) at least kNegativeThreshold times fails
  // immediately — no slot, no queue entry, no re-plan.
  if (negative_hit) {
    SessionPtr session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return Status::Unavailable("session manager shut down");
      session = std::make_shared<Session>(NextIdLocked(), std::move(sql),
                                          std::move(options));
      session->backend_ = backend;
      sessions_.emplace(session->id(), session);
    }
    {
      std::lock_guard<std::mutex> clock(counters_mu_);
      ++counters_.submitted;
      ++counters_.cache_negative_served;
    }
    {
      std::lock_guard<std::mutex> lock(session->mu_);
      session->state_ = SessionState::kFailed;
      session->error_ = std::move(negative);
      session->wall_ms_ = MillisSince(session->submitted_at_);
      session->cv_.notify_all();
    }
    return session;
  }

  // Cache hit: finish immediately from the stored reply — no running slot,
  // no queue entry, no deadline (the work is already done).
  if (has_fp) {
    if (CachedResultPtr cached = cache_.Lookup(fp)) {
      SessionPtr session;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (shutdown_) return Status::Unavailable("session manager shut down");
        session = std::make_shared<Session>(NextIdLocked(), std::move(sql),
                                            std::move(options));
        session->backend_ = backend;
        session->fp_ = fp;
        session->has_fp_ = true;
        session->fp_generation_ = fp_generation;
        sessions_.emplace(session->id(), session);
      }
      {
        std::lock_guard<std::mutex> clock(counters_mu_);
        ++counters_.submitted;
      }
      PublishFromCache(session, cached);
      return session;
    }
  }

  // Governed memory carve-up: clamp this run's budget to the tenant's
  // share before the session captures its options. Fingerprints exclude
  // budgets, so the clamp never perturbs cache keys.
  if (governor_ != nullptr) {
    options.memory_budget_bytes =
        governor_->GovernMemoryBudget(this, options.memory_budget_bytes);
  }

  // Governed slot acquisition happens before mu_ (the governor lock is
  // taken while holding no manager lock, never the other way around) and
  // strictly after the negative/cache-hit paths above, so cache hits keep
  // consuming no slot. A slot granted here implies running_ < max_running_:
  // the governor caps this manager's outstanding grants at max_running_ and
  // only slot-holding paths increment running_.
  bool slot = false;
  if (governor_ != nullptr) slot = governor_->TryAcquireRunSlot(this);

  SessionPtr session;
  bool launch = false;
  bool joined = false;
  bool queued = false;
  Status reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      reject = Status::Unavailable("session manager shut down");
    } else if (auto inflight_it = has_fp ? inflight_.find(fp) : inflight_.end();
               inflight_it != inflight_.end()) {
      // Identical task already in flight: join it as a follower instead of
      // running again. Followers hold no slot and no queue entry (they are
      // pure waiters), so they bypass the admission-full check.
      session = std::make_shared<Session>(NextIdLocked(), std::move(sql),
                                          std::move(options));
      session->backend_ = backend;
      session->fp_ = fp;
      session->has_fp_ = true;
      session->fp_generation_ = fp_generation;
      if (timeout_ms > 0.0) session->ctx_.SetTimeoutMillis(timeout_ms);
      sessions_.emplace(session->id(), session);
      inflight_it->second.followers.push_back(session);
      joined = true;
    } else {
      const bool can_run =
          governor_ != nullptr ? slot : running_ < max_running_;
      if (!can_run && queue_.size() >= options_.max_queued) {
        std::lock_guard<std::mutex> clock(counters_mu_);
        ++counters_.rejected;
        reject = Status::Unavailable(
            StringFormat("admission queue full (%zu running, %zu queued)",
                         running_, queue_.size()));
      } else {
        session = std::make_shared<Session>(NextIdLocked(), std::move(sql),
                                            std::move(options));
        session->backend_ = backend;
        if (has_fp) {
          session->fp_ = fp;
          session->has_fp_ = true;
          session->fp_generation_ = fp_generation;
          inflight_.emplace(fp, Inflight{session, {}});
        }
        // The deadline clock starts at admission, so queue wait counts
        // against the caller's budget -- a request that waited out its
        // deadline in the queue finishes immediately as kDeadlineExceeded
        // instead of running.
        if (timeout_ms > 0.0) session->ctx_.SetTimeoutMillis(timeout_ms);
        // Arm streaming before the session can launch (or even queue): the
        // sink must cover the run from its first drained layer. The manager
        // interposes only to tally the frame; emission happens on the run
        // thread strictly before RunSession's terminal publish, so by the
        // time WaitDone returns no further frame can be in flight — the
        // final reply is always the last line of a streaming exchange.
        if (progress.enabled && progress.callback) {
          Session* raw = session.get();
          session->ctx_.ArmProgressSink(
              [this, raw, cb = std::move(progress.callback)](
                  const ProgressSnapshot& snap) {
                {
                  std::lock_guard<std::mutex> clock(counters_mu_);
                  ++counters_.progress_frames;
                }
                cb(*raw, snap);
              },
              progress.interval_ms);
        }
        sessions_.emplace(session->id(), session);
        if (can_run) {
          ++running_;
          launch = true;
        } else {
          queue_.push_back(session);
          queued = true;
        }
      }
    }
  }
  // An acquired slot that didn't launch (shutdown, follower join, or a
  // reject — the last is impossible with a slot, but harmless) goes back to
  // the governor, which may hand it straight to a queued tenant.
  if (governor_ != nullptr && slot && !launch) governor_->ReleaseRunSlot(this);
  if (!reject.ok()) return reject;
  {
    std::lock_guard<std::mutex> clock(counters_mu_);
    ++counters_.submitted;
    if (joined) ++counters_.cache_inflight_joins;
  }
  if (launch) {
    Launch(session);
  } else if (queued && governor_ != nullptr) {
    // Closes the enqueue/dispatch race: a slot freed between our failed
    // TryAcquire and the push_back above would have scanned an empty queue.
    governor_->NotifyQueued(this);
  }
  return session;
}

bool SessionManager::DispatchOneQueued() {
  SessionPtr session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    session = queue_.front();
    queue_.pop_front();
    ++running_;
  }
  // During shutdown the session still launches: its runner observes the
  // cancel request immediately and publishes kCancelled, which is exactly
  // how queued sessions drain (Shutdown waits for running_ to hit zero).
  Launch(std::move(session));
  return true;
}

bool SessionManager::ComputeFingerprint(const std::string& sql,
                                        const AcquireOptions& options,
                                        EvalBackend backend,
                                        TaskFingerprint* fp) const {
  Result<AstQuery> ast = ParseAcqSql(sql);
  if (!ast.ok()) return false;
  Binder binder(catalog_);
  Result<QuerySpec> spec = binder.BindQuery(*ast);
  if (!spec.ok()) return false;
  // A SUBMIT-level backend override beats the spec's choice at run time
  // (RunSession applies it to the planned task), so it must key the cache.
  if (backend != EvalBackend::kAuto) spec->eval_backend = backend;
  Result<TaskFingerprint> result = FingerprintTask(*catalog_, *spec, options);
  if (!result.ok()) return false;
  *fp = *result;
  return true;
}

void SessionManager::PublishFromCache(const SessionPtr& session,
                                      const CachedResultPtr& cached) {
  // Adopt the seeding run's progress counters first, so a STATUS racing the
  // notify never reports done with zero progress.
  session->ctx_.queries_explored.store(cached->queries_explored,
                                       std::memory_order_relaxed);
  session->ctx_.cell_queries.store(cached->cell_queries,
                                   std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(session->mu_);
  if (IsTerminal(session->state_)) return;
  session->state_ = SessionState::kDone;
  session->cached_ = cached;
  session->wall_ms_ = MillisSince(session->submitted_at_);
  session->cv_.notify_all();
}

void SessionManager::PublishCancelled(const SessionPtr& session) {
  std::lock_guard<std::mutex> lock(session->mu_);
  if (IsTerminal(session->state_)) return;
  session->state_ = SessionState::kCancelled;
  session->wall_ms_ = MillisSince(session->submitted_at_);
  session->cv_.notify_all();
}

void SessionManager::ResolveInflightLocked(const SessionPtr& session,
                                           const CachedResultPtr& cached,
                                           SessionPtr* promoted,
                                           std::vector<SessionPtr>* serve,
                                           std::vector<SessionPtr>* cancel) {
  if (!session->has_fp_) return;
  auto it = inflight_.find(session->fp_);
  if (it == inflight_.end() || it->second.leader != session) return;
  std::vector<SessionPtr> followers = std::move(it->second.followers);
  inflight_.erase(it);
  if (cached != nullptr) {
    cache_.Insert(session->fp_, cached);
    *serve = std::move(followers);
    return;
  }
  if (followers.empty()) return;
  if (!shutdown_) {
    // The leader didn't complete (failed / cancelled / truncated /
    // exhausted), so its reply must not stand in for the followers': the
    // oldest follower runs fresh on the slot the leader is vacating, and the
    // rest wait on it.
    *promoted = std::move(followers.front());
    followers.erase(followers.begin());
    inflight_.emplace(session->fp_, Inflight{*promoted, std::move(followers)});
    return;
  }
  {
    std::lock_guard<std::mutex> clock(counters_mu_);
    counters_.cancelled += followers.size();
  }
  *cancel = std::move(followers);
}

void SessionManager::FinishSlot(const SessionPtr& session,
                                const CachedResultPtr& cached,
                                SessionPtr* next,
                                std::vector<SessionPtr>* serve,
                                std::vector<SessionPtr>* cancel) {
  bool release_slot = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionPtr promoted;
    ResolveInflightLocked(session, cached, &promoted, serve, cancel);
    if (promoted != nullptr) {
      // A promoted follower inherits the slot (manager-local and, under a
      // governor, the governor grant) — it has waited at least as long as
      // anything queued anywhere.
      *next = std::move(promoted);
    } else if (governor_ == nullptr && !queue_.empty()) {
      *next = queue_.front();
      queue_.pop_front();
    } else if (governor_ == nullptr) {
      --running_;
      idle_cv_.notify_all();
    } else {
      release_slot = true;
    }
  }
  if (release_slot) {
    // Governed: hand the slot back first — the governor's dispatch may
    // deal it to any tenant's queue (including this one) — and only then
    // decrement running_. Shutdown (and therefore manager destruction)
    // waits on running_ == 0, so the governor call lands strictly before
    // teardown can begin; after the decrement only sessions may be
    // touched.
    governor_->ReleaseRunSlot(this);
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    idle_cv_.notify_all();
  }
}

Result<SessionPtr> SessionManager::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound(StringFormat("no session '%s'", id.c_str()));
  }
  return it->second;
}

Result<SessionPtr> SessionManager::Cancel(const std::string& id) {
  ACQ_ASSIGN_OR_RETURN(SessionPtr session, Find(id));
  // A follower holds no slot and no run: cancelling it just detaches it
  // from the leader it was waiting on. The leader (and any other follower)
  // is untouched — cancelling one duplicate never poisons the rest.
  bool was_follower = false;
  if (session->has_fp_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(session->fp_);
    if (it != inflight_.end() && it->second.leader != session) {
      auto& followers = it->second.followers;
      auto pos = std::find(followers.begin(), followers.end(), session);
      if (pos != followers.end()) {
        followers.erase(pos);
        was_follower = true;
      }
    }
  }
  if (was_follower) {
    {
      std::lock_guard<std::mutex> clock(counters_mu_);
      ++counters_.cancelled;
    }
    PublishCancelled(session);
    return session;
  }
  session->RequestCancel();
  return session;
}

Result<SessionPtr> SessionManager::Stop(const std::string& id) {
  ACQ_ASSIGN_OR_RETURN(SessionPtr session, Find(id));
  // Followers are deliberately left attached (see the header): stopping a
  // pure waiter cannot produce a partial answer, and its leader's full
  // result — which it will receive anyway — dominates any best-so-far.
  // RequestClientStop on a follower's context is a harmless no-op (nothing
  // polls it), so no follower special-casing is needed here.
  session->RequestClientStop();
  return session;
}

void SessionManager::Shutdown() {
  std::vector<SessionPtr> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    to_cancel.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) to_cancel.push_back(session);
  }
  for (const SessionPtr& session : to_cancel) session->RequestCancel();
  // Governed managers drain their queue through governor dispatch (each
  // dispatched session observes its cancel immediately). Nudge once in
  // case every slot was idle when the last request queued.
  if (governor_ != nullptr) governor_->NotifyQueued(this);
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return running_ == 0 && queue_.empty(); });
}

ServerCounters SessionManager::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

size_t SessionManager::num_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t SessionManager::num_queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void SessionManager::Launch(SessionPtr session) {
  // The runner owns one of the max_running_ slots for its whole lifetime:
  // after finishing a session it pulls the next queued one directly instead
  // of resubmitting to the pool, so a burst of queued requests costs one
  // pool task, and the slot is released (with idle_cv_ notified) only when
  // the queue is empty.
  // Injected enqueue failure: the pool refused the runner task, so the
  // session fails terminally without running — with the same bookkeeping
  // order as RunSession's tail (counters, then slot handoff, then terminal
  // publish). The loop keeps the slot and retries the enqueue for the next
  // queued session; each retry re-evaluates the failpoint.
  while (ACQ_FAILPOINT("server.pool_enqueue")) {
    {
      std::lock_guard<std::mutex> clock(counters_mu_);
      ++counters_.failed;
    }
    SessionPtr next;
    std::vector<SessionPtr> serve_unused;
    std::vector<SessionPtr> cancel_followers;
    // A failed leader must not strand its followers: promote one onto
    // this slot (it becomes `next`) or, on shutdown, cancel them.
    FinishSlot(session, nullptr, &next, &serve_unused, &cancel_followers);
    // After releasing the slot, Shutdown may destroy the manager: only
    // sessions may be touched past this point on the next == nullptr path.
    {
      std::lock_guard<std::mutex> lock(session->mu_);
      session->state_ = SessionState::kFailed;
      session->error_ = Status::Unavailable(
          "injected thread-pool enqueue failure "
          "(failpoint server.pool_enqueue)");
      session->wall_ms_ = MillisSince(session->submitted_at_);
      session->cv_.notify_all();
    }
    for (const SessionPtr& follower : cancel_followers) {
      PublishCancelled(follower);
    }
    if (next == nullptr) return;
    session = std::move(next);
  }
  ThreadPool::Shared().Submit([this, session = std::move(session)]() mutable {
    while (session != nullptr) {
      SessionPtr next;
      RunSession(session, &next);
      // Once RunSession released the slot (next == nullptr and the queue
      // was empty), Shutdown may return and destroy the manager, so the
      // loop must not touch `this` again on that path.
      session = std::move(next);
    }
  });
}

void SessionManager::RunSession(const SessionPtr& session, SessionPtr* next) {
  const Clock::time_point start = session->submitted_at_;

  SessionState state = SessionState::kFailed;
  Status error;
  bool has_outcome = false;
  AcqOutcome outcome;
  std::shared_ptr<AcqTask> task;
  bool interrupted_in_queue = false;

  // A cancel (or manager shutdown) that arrived while queued wins without
  // running; a STOP or a deadline that expired in the queue likewise
  // resolves here with an empty partial report (the cancel-beats-stop
  // precedence matches RunContext::Interruption).
  if (session->ctx_.ShouldStop()) {
    interrupted_in_queue = true;
    const bool was_cancel = session->ctx_.cancel_requested();
    const bool was_stop =
        !was_cancel && session->ctx_.client_stop_requested();
    {
      std::lock_guard<std::mutex> clock(counters_mu_);
      if (was_cancel) {
        ++counters_.cancelled;
      } else if (was_stop) {
        ++counters_.client_satisfied;
      } else {
        ++counters_.deadline_exceeded;
      }
    }
    if (!was_cancel) {
      outcome.result.termination = was_stop
                                       ? RunTermination::kClientSatisfied
                                       : RunTermination::kDeadlineExceeded;
      has_outcome = true;
    }
    state = was_cancel ? SessionState::kCancelled : SessionState::kDone;
  }

  // The run body and the cache-render decision sit inside one shared hold
  // of the data lock: the catalog cannot move between planning, executing
  // and deciding whether the answer may seed the cache. An APPEND therefore
  // waits for in-flight runs (they finish against their snapshot) and no
  // result computed on post-append data is ever stored under a pre-append
  // fingerprint, or vice versa.
  std::shared_lock<std::shared_mutex> data_lock(data_mu_, std::defer_lock);

  if (!interrupted_in_queue) {
    {
      std::lock_guard<std::mutex> lock(session->mu_);
      session->state_ = SessionState::kRunning;
    }
    data_lock.lock();

    // Bind + plan against the shared catalog, then run. The task
    // outlives the outcome (answer rendering needs its dimensions), so it
    // lives in a shared_ptr on the session. The failpoint sits in front of
    // the whole body: a `sleep:` spec stretches the run (widening the
    // in-flight dedup window for tests) and a failure spec fails it.
    Binder binder(catalog_);
    Result<AcqTask> planned =
        ACQ_FAILPOINT("server.run")
            ? Result<AcqTask>(Status::Unavailable(
                  "injected run failure (failpoint server.run)"))
            : binder.PlanSql(session->sql());
    if (!planned.ok()) {
      error = planned.status();
      if (IsDeterministicPlanFailure(error)) {
        cache_.RecordFailure(NegativeKey(*catalog_, session->sql()), error);
      }
    } else {
      task = std::make_shared<AcqTask>(std::move(*planned));
      if (session->backend_ != EvalBackend::kAuto) {
        task->eval_backend = session->backend_;
      }
      Result<AcqOutcome> ran = ProcessAcq(*task, session->options_);
      if (!ran.ok()) {
        error = ran.status();
      } else {
        outcome = std::move(*ran);
        has_outcome = true;
        state = outcome.result.termination == RunTermination::kCancelled
                    ? SessionState::kCancelled
                    : SessionState::kDone;
      }
    }

    // Counters first: a waiter released by the notify below must already
    // see this run reflected in STATS.
    {
      std::lock_guard<std::mutex> clock(counters_mu_);
      if (!has_outcome) {
        ++counters_.failed;
      } else {
        switch (outcome.result.termination) {
          case RunTermination::kCompleted:
            ++counters_.completed;
            break;
          case RunTermination::kTruncated:
            ++counters_.truncated;
            break;
          case RunTermination::kDeadlineExceeded:
            ++counters_.deadline_exceeded;
            break;
          case RunTermination::kCancelled:
            ++counters_.cancelled;
            break;
          case RunTermination::kClientSatisfied:
            ++counters_.client_satisfied;
            break;
          case RunTermination::kResourceExhausted:
            ++counters_.resource_exhausted;
            break;
        }
        const AcquireResult& result = outcome.result;
        counters_.queries_explored += result.queries_explored;
        counters_.cell_queries += result.cell_queries;
        counters_.eval_queries += result.exec_stats.queries;
        counters_.tuples_scanned += result.exec_stats.tuples_scanned;
        counters_.merge_layers_central += result.exec_stats.merge_layers_central;
        counters_.merge_layers_tree += result.exec_stats.merge_layers_tree;
        counters_.merge_layers_radix += result.exec_stats.merge_layers_radix;
        counters_.merge_layers_sequential +=
            result.exec_stats.merge_layers_sequential;
        counters_.prepare_micros +=
            static_cast<uint64_t>(result.exec_stats.prepare_ms * 1000.0);
        counters_.delta_rows += result.exec_stats.delta_rows;
        counters_.delta_merges += result.exec_stats.delta_merges;
        counters_.run_micros +=
            static_cast<uint64_t>(result.elapsed_ms * 1000.0);
      }
    }
  }

  // One wall-clock reading and (for completed cacheable runs) one report
  // render, BEFORE any publish: the leader, its followers, and every later
  // cache hit reply with this exact JSON, which is what makes cached
  // replies byte-identical to the fresh one.
  const double wall_ms = MillisSince(start);
  CachedResultPtr cached;
  // Stale-generation guard: a session fingerprinted at generation G but run
  // after an APPEND moved the catalog to G' computed its answer on data the
  // fingerprint does not describe. Its reply is correct for the caller, but
  // it must not seed the cache (followers are promoted to re-run instead).
  const bool generation_current =
      data_lock.owns_lock() &&
      catalog_->generation() == session->fp_generation_;
  if (session->has_fp_ && state == SessionState::kDone && has_outcome &&
      outcome.result.termination == RunTermination::kCompleted &&
      generation_current) {
    auto entry = std::make_shared<CachedResult>();
    entry->report = BuildReportJson(outcome, task.get(), wall_ms);
    entry->queries_explored =
        session->ctx_.queries_explored.load(std::memory_order_relaxed);
    entry->cell_queries =
        session->ctx_.cell_queries.load(std::memory_order_relaxed);
    entry->bytes = entry->report.Dump().size() + 64;
    // Cost-aware eviction signal: what this reply cost to compute.
    entry->cost_ms = wall_ms;
    entry->generation = session->fp_generation_;
    cached = std::move(entry);
  }
  if (data_lock.owns_lock()) data_lock.unlock();

  // Slot bookkeeping before the terminal publish: a waiter released by the
  // notify below must see the slot already handed to the next queued
  // session (or the governor) or released in num_running()/num_queued().
  // The idle_cv_ notify inside FinishSlot can let Shutdown (and the
  // manager destructor) proceed, so from here on only sessions themselves
  // may be touched.
  std::vector<SessionPtr> serve_followers;
  std::vector<SessionPtr> cancel_followers;
  FinishSlot(session, cached, next, &serve_followers, &cancel_followers);

  {
    std::lock_guard<std::mutex> lock(session->mu_);
    session->state_ = state;
    session->error_ = error;
    if (has_outcome) {
      session->outcome_ = std::move(outcome);
      session->has_outcome_ = true;
      session->task_ = std::move(task);
    }
    // The seeding run itself replies from the cached render too, so its own
    // reply matches every hit that follows.
    session->cached_ = cached;
    session->wall_ms_ = wall_ms;
    session->cv_.notify_all();
  }

  for (const SessionPtr& follower : serve_followers) {
    PublishFromCache(follower, cached);
  }
  for (const SessionPtr& follower : cancel_followers) {
    PublishCancelled(follower);
  }
}

}  // namespace acquire
