#ifndef ACQUIRE_SERVER_JSON_H_
#define ACQUIRE_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace acquire {

/// Minimal JSON value for the server's newline-delimited protocol — the
/// container ships no JSON dependency, and the protocol needs only the
/// RFC 8259 core: null / bool / number / string / array / object, strict
/// parsing (ParseError with byte offsets on malformed input) and compact
/// serialization. Numbers are doubles, matching the engine's value domain;
/// integral doubles print without a fraction so ids and counters round-trip
/// readably.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; meaningful only for the matching kind (asserts in
  /// debug builds, defaults otherwise).
  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }

  /// Object access. Insertion order is preserved on serialization.
  /// Get returns nullptr when `key` is absent (or this is not an object).
  const JsonValue* Get(const std::string& key) const;
  void Set(std::string key, JsonValue value);
  /// Object members in insertion order (empty for non-objects); lets tests
  /// compare two protocol replies field-by-field (e.g. modulo "id").
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }
  size_t size() const {
    return kind_ == Kind::kArray ? array_.size() : members_.size();
  }

  /// Array append.
  void Append(JsonValue value);

  /// Convenience lookups for protocol fields: value of `key` coerced to
  /// the requested type, or `fallback` when absent/mismatched.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Compact single-line serialization (never contains a raw newline, so a
  /// dumped value is always a valid protocol line).
  std::string Dump() const;

  /// Strict parse of exactly one JSON value (trailing non-whitespace is an
  /// error). ParseError with a byte offset on malformed input.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_JSON_H_
