#include "server/tenant.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/string_util.h"
#include "exec/thread_pool.h"
#include "server/durability.h"
#include "storage/persistence.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

namespace acquire {

namespace {

constexpr double kMinWeight = 1e-3;

size_t ResolveTotalSlots(size_t requested) {
  if (requested != 0) return requested;
  return std::max<size_t>(1, ThreadPool::Shared().num_threads() / 2);
}

}  // namespace

ResourceGovernor::ResourceGovernor(Options options)
    : total_slots_(ResolveTotalSlots(options.total_run_slots)),
      global_memory_(options.global_memory_budget_bytes) {}

ResourceGovernor::Entry* ResourceGovernor::FindEntryLocked(
    const SessionManager* manager) {
  for (Entry& entry : entries_) {
    if (entry.manager == manager) return &entry;
  }
  return nullptr;
}

const ResourceGovernor::Entry* ResourceGovernor::FindEntryLocked(
    const SessionManager* manager) const {
  for (const Entry& entry : entries_) {
    if (entry.manager == manager) return &entry;
  }
  return nullptr;
}

void ResourceGovernor::Register(SessionManager* manager, double weight,
                                size_t slot_limit) {
  std::unique_lock<std::mutex> lock(mu_);
  if (FindEntryLocked(manager) != nullptr) return;
  Entry entry;
  entry.manager = manager;
  entry.weight = std::max(weight, kMinWeight);
  entry.slot_limit = std::max<size_t>(1, slot_limit);
  // Join at the current minimum pass: next in line, but owed nothing for
  // the time before it existed (a fresh pass of 0 would let a re-attached
  // tenant monopolize slots until it caught up with the incumbents).
  double min_pass = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) min_pass = std::min(min_pass, e.pass);
  entry.pass = entries_.empty() ? 0.0 : min_pass;
  entries_.push_back(entry);
}

void ResourceGovernor::Deregister(SessionManager* manager) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Entry* entry = FindEntryLocked(manager);
    if (entry == nullptr) return;
    if (!entry->busy) {
      used_slots_ -= std::min(used_slots_, entry->active);
      entries_.erase(entries_.begin() + (entry - entries_.data()));
      return;
    }
    busy_cv_.wait(lock);
  }
}

bool ResourceGovernor::TryAcquireRunSlot(SessionManager* manager) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindEntryLocked(manager);
  if (entry == nullptr) return false;
  if (used_slots_ >= total_slots_ || entry->active >= entry->slot_limit) {
    return false;
  }
  ++used_slots_;
  ++entry->active;
  entry->pass += 1.0 / entry->weight;
  return true;
}

void ResourceGovernor::ReleaseRunSlot(SessionManager* manager) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry* entry = FindEntryLocked(manager);
  if (entry != nullptr && entry->active > 0) {
    --entry->active;
    if (used_slots_ > 0) --used_slots_;
  }
  DispatchLocked(lock);
}

void ResourceGovernor::NotifyQueued(SessionManager* manager) {
  (void)manager;
  std::unique_lock<std::mutex> lock(mu_);
  DispatchLocked(lock);
}

void ResourceGovernor::DispatchLocked(std::unique_lock<std::mutex>& lock) {
  // Tenants whose queue came up dry this round; they only regain work via
  // a Submit, and that Submit calls TryAcquireRunSlot / NotifyQueued
  // itself, so skipping them here loses nothing.
  std::vector<const SessionManager*> dry;
  while (used_slots_ < total_slots_) {
    Entry* pick = nullptr;
    for (Entry& entry : entries_) {
      if (entry.busy || entry.active >= entry.slot_limit) continue;
      if (std::find(dry.begin(), dry.end(), entry.manager) != dry.end()) {
        continue;
      }
      if (pick == nullptr || entry.pass < pick->pass) pick = &entry;
    }
    if (pick == nullptr) return;

    // Tentatively charge the grant, then probe the tenant's queue outside
    // the governor lock (DispatchOneQueued takes the manager's own lock).
    // `busy` pins the entry: Deregister waits on it and concurrent
    // dispatch loops skip it, so the raw pointer stays valid across the
    // unlocked window.
    SessionManager* manager = pick->manager;
    ++used_slots_;
    ++pick->active;
    pick->busy = true;
    lock.unlock();
    const bool launched = manager->DispatchOneQueued();
    lock.lock();
    Entry* entry = FindEntryLocked(manager);  // entries_ may have moved
    if (entry != nullptr) {
      entry->busy = false;
      if (launched) {
        entry->pass += 1.0 / entry->weight;
      } else {
        if (entry->active > 0) --entry->active;
        if (used_slots_ > 0) --used_slots_;
      }
    } else if (!launched && used_slots_ > 0) {
      --used_slots_;
    }
    busy_cv_.notify_all();
    if (!launched) dry.push_back(manager);
  }
}

uint64_t ResourceGovernor::GovernMemoryBudget(SessionManager* manager,
                                              uint64_t requested) {
  std::lock_guard<std::mutex> lock(mu_);
  if (global_memory_ == 0) return requested;
  const Entry* self = FindEntryLocked(manager);
  if (self == nullptr) return requested;
  double total_weight = 0.0;
  for (const Entry& entry : entries_) total_weight += entry.weight;
  const double budget = static_cast<double>(global_memory_);
  double available = budget * self->weight / total_weight;
  // Borrow-back: idle tenants' shares are lent to the active ones instead
  // of sitting reserved; the moment an idle tenant submits, its next run
  // reclaims its share from this same formula.
  for (const Entry& entry : entries_) {
    if (entry.manager != manager && entry.active == 0) {
      available += budget * entry.weight / total_weight;
    }
  }
  // The caller acquires its slot after this, so active runs = active + 1.
  uint64_t cap = static_cast<uint64_t>(
      available / static_cast<double>(self->active + 1));
  if (cap == 0) cap = 1;  // 0 would mean "unmetered" downstream
  return requested == 0 ? cap : std::min(requested, cap);
}

bool ResourceGovernor::Usage(const SessionManager* manager,
                             TenantUsage* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntryLocked(manager);
  if (entry == nullptr) return false;
  out->weight = entry->weight;
  out->active_slots = entry->active;
  out->slot_limit = entry->slot_limit;
  if (global_memory_ != 0) {
    double total_weight = 0.0;
    for (const Entry& e : entries_) total_weight += e.weight;
    out->memory_share_bytes = static_cast<uint64_t>(
        static_cast<double>(global_memory_) * entry->weight / total_weight);
  } else {
    out->memory_share_bytes = 0;
  }
  return true;
}

size_t ResourceGovernor::used_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_slots_;
}

bool IsValidTenantId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Tenant::Tenant() = default;
Tenant::~Tenant() = default;

TenantRegistry::TenantRegistry(ResourceGovernor* governor,
                               SessionManagerOptions base_options,
                               ServerDurability* durability)
    : governor_(governor),
      base_options_(base_options),
      durability_(durability != nullptr && durability->enabled() ? durability
                                                                 : nullptr) {}

TenantRegistry::~TenantRegistry() {
  std::vector<TenantPtr> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, tenant] : tenants_) all.push_back(tenant);
    tenants_.clear();
  }
  for (const TenantPtr& tenant : all) {
    tenant->manager().Shutdown();
    governor_->Deregister(&tenant->manager());
  }
}

TenantPtr TenantRegistry::MakeTenantLocked(
    std::string id, double weight, std::unique_ptr<Catalog> owned,
    Catalog* mutable_catalog, const Catalog* const_catalog,
    std::unique_ptr<TenantDurability> durability,
    SessionManagerOptions options) {
  auto tenant = std::make_shared<Tenant>();
  tenant->id_ = std::move(id);
  tenant->weight_ = weight;
  tenant->owned_catalog_ = std::move(owned);
  tenant->durability_ = std::move(durability);
  options.durability = tenant->durability_.get();
  if (mutable_catalog != nullptr) {
    tenant->manager_ =
        std::make_unique<SessionManager>(mutable_catalog, options);
  } else {
    tenant->manager_ =
        std::make_unique<SessionManager>(const_catalog, options);
  }
  // Register before publishing: once the tenant is findable, every Submit
  // expects the governor to know its manager.
  governor_->Register(tenant->manager_.get(), weight,
                      tenant->manager_->max_running());
  tenants_.emplace(tenant->id_, tenant);
  return tenant;
}

TenantPtr TenantRegistry::AdoptDefault(Catalog* catalog, double weight) {
  // Recovery happens before the manager exists, so no lock ordering issues:
  // the checkpoint replaces the catalog's tables and the WAL replays the
  // appends the pre-crash process acked after the snapshot.
  std::unique_ptr<TenantDurability> durability;
  if (durability_ != nullptr) {
    Result<std::unique_ptr<TenantDurability>> opened = durability_->OpenTenant(
        kDefaultId, /*disk_bytes=*/0, catalog, /*fresh=*/false);
    if (opened.ok()) {
      durability = std::move(*opened);
    } else {
      // Durability is degraded (e.g. the directory is unwritable) but the
      // server still starts — the never-refuse rule.
      std::fprintf(stderr, "durability for '%s' disabled: %s\n", kDefaultId,
                   opened.status().ToString().c_str());
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerOptions options = base_options_;
  options.governor = governor_;
  options.session_prefix = "s-";  // historical bare ids: wire compatibility
  return MakeTenantLocked(kDefaultId, weight, nullptr, catalog, catalog,
                          std::move(durability), options);
}

TenantPtr TenantRegistry::AdoptDefault(const Catalog* catalog, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerOptions options = base_options_;
  options.governor = governor_;
  options.session_prefix = "s-";
  // A read-only catalog accepts no appends, so there is nothing to log or
  // recover: no TenantDurability.
  return MakeTenantLocked(kDefaultId, weight, nullptr, nullptr, catalog,
                          nullptr, options);
}

Result<TenantPtr> TenantRegistry::Attach(const AttachParams& params,
                                         bool from_recovery) {
  if (!IsValidTenantId(params.id)) {
    return Status::InvalidArgument(StringFormat(
        "invalid tenant id '%s' (1..64 chars of [A-Za-z0-9_.-])",
        params.id.c_str()));
  }
  if (params.id == kDefaultId) {
    return Status::InvalidArgument(
        "tenant id 'default' is reserved for the adopted server catalog");
  }
  if (params.weight <= 0.0) {
    return Status::InvalidArgument("tenant weight must be positive");
  }
  const bool has_gen = !params.generator.empty();
  const bool has_dir = !params.loaddb_dir.empty();
  if (has_gen == has_dir) {
    return Status::InvalidArgument(
        "ATTACH needs exactly one data source: a generator "
        "(gen tpch|users|patients) or a loaddb directory");
  }

  // Claim the id before any slow or destructive work: the fresh-attach path
  // wipes <wal_dir>/<id>, which must never hit a live tenant's log or a
  // directory a concurrent ATTACH of the same id is populating.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(params.id) != 0 || !attaching_.insert(params.id).second) {
      return Status::AlreadyExists(
          StringFormat("tenant '%s' is already attached", params.id.c_str()));
    }
  }
  struct ClaimGuard {
    TenantRegistry* registry;
    const std::string& id;
    ~ClaimGuard() {
      std::lock_guard<std::mutex> lock(registry->mu_);
      registry->attaching_.erase(id);
    }
  } claim_guard{this, params.id};

  // Build the catalog before taking the registry lock: generation can be
  // slow and must not block lookups or other attaches.
  auto catalog = std::make_unique<Catalog>();
  if (has_gen) {
    const std::string kind = ToLower(params.generator);
    if (kind == "tpch") {
      TpchOptions options;
      if (params.rows != 0) {
        options.lineitems = params.rows;
        options.suppliers = std::max<size_t>(100, params.rows / 200);
        options.parts = std::max<size_t>(200, params.rows / 100);
      }
      if (params.seed != 0) options.seed = params.seed;
      ACQ_RETURN_IF_ERROR(GenerateTpch(options, catalog.get()));
    } else if (kind == "users") {
      UsersOptions options;
      if (params.rows != 0) options.users = params.rows;
      if (params.seed != 0) options.seed = params.seed;
      ACQ_RETURN_IF_ERROR(GenerateUsers(options, catalog.get()));
    } else if (kind == "patients") {
      PatientsOptions options;
      if (params.rows != 0) options.patients = params.rows;
      if (params.seed != 0) options.seed = params.seed;
      ACQ_RETURN_IF_ERROR(GeneratePatients(options, catalog.get()));
    } else {
      return Status::InvalidArgument(StringFormat(
          "unknown generator '%s' (tpch|users|patients)", kind.c_str()));
    }
  } else {
    ACQ_RETURN_IF_ERROR(LoadCatalog(params.loaddb_dir, catalog.get()));
  }
  // Tenant identity folded into the catalog's provenance: the fingerprint
  // covers load_params, so two tenants built from identical generator
  // parameters still key the (already separate) caches apart.
  catalog->AppendLoadParams(StringFormat("tenant=%s", params.id.c_str()));

  // Durability, before the tenant is publishable. A fresh ATTACH starts
  // from a wiped directory and is logged to the manifest; a manifest-replay
  // re-attach instead recovers the tenant's checkpoint + WAL on top of the
  // deterministically rebuilt base catalog, and must not re-log itself.
  std::unique_ptr<TenantDurability> durability;
  if (durability_ != nullptr) {
    Result<std::unique_ptr<TenantDurability>> opened = durability_->OpenTenant(
        params.id, params.disk_bytes, catalog.get(),
        /*fresh=*/!from_recovery);
    if (!opened.ok()) return opened.status();
    durability = std::move(*opened);
    if (!from_recovery) {
      Status logged = durability_->LogAttach(params);
      if (!logged.ok()) {
        // An unlogged tenant would silently vanish on restart; fail the
        // ATTACH instead and leave nothing behind.
        durability.reset();
        durability_->RemoveTenant(params.id);
        return logged;
      }
    }
  }

  // The attaching_ claim guarantees exclusivity for this id until the guard
  // releases it, so no duplicate re-check is needed under the lock.
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerOptions options = base_options_;
  options.governor = governor_;
  options.session_prefix = params.id + "-s-";
  if (params.max_queued != 0) options.max_queued = params.max_queued;
  if (params.cache_bytes >= 0) {
    options.cache_bytes = static_cast<uint64_t>(params.cache_bytes);
  }
  Catalog* mutable_catalog = catalog.get();  // ATTACHed tenants allow APPEND
  return MakeTenantLocked(params.id, params.weight, std::move(catalog),
                          mutable_catalog, nullptr, std::move(durability),
                          options);
}

Status TenantRegistry::Detach(const std::string& id) {
  if (id == kDefaultId) {
    return Status::InvalidArgument("the default tenant cannot be detached");
  }
  TenantPtr tenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return Status::NotFound(
          StringFormat("no tenant '%s' attached", id.c_str()));
    }
    // Log before unpublishing, while still holding the lock: if the
    // manifest append fails the tenant stays attached, and a success means
    // a crash anywhere past this point can no longer resurrect it.
    if (durability_ != nullptr) {
      ACQ_RETURN_IF_ERROR(durability_->LogDetach(id));
    }
    tenant = std::move(it->second);
    tenants_.erase(it);
  }
  // Unrouted above; now drain outside the registry lock. Shutdown cancels
  // every queued and running session through the RunContext cancellation
  // path and returns once nothing runs, after which no slot is
  // outstanding and the governor entry can go.
  tenant->manager().Shutdown();
  governor_->Deregister(&tenant->manager());
  // The TenantDurability stays owned by the (possibly still referenced)
  // Tenant; deleting the directory under its open log fd is safe — any
  // straggler append lands in an unlinked file.
  if (durability_ != nullptr) durability_->RemoveTenant(id);
  return Status::OK();
}

Result<TenantPtr> TenantRegistry::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StringFormat("no tenant '%s' attached", id.c_str()));
  }
  return it->second;
}

TenantPtr TenantRegistry::FindBySession(const std::string& session_id) const {
  std::vector<TenantPtr> all = List();
  for (const TenantPtr& tenant : all) {
    if (tenant->manager().Find(session_id).ok()) return tenant;
  }
  return nullptr;
}

std::vector<TenantPtr> TenantRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantPtr> out;
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) out.push_back(tenant);
  return out;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace acquire
