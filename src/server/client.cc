#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"

namespace acquire {

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      retries_(other.retries_) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    retries_ = other.retries_;
    other.fd_ = -1;
  }
  return *this;
}

Status LineClient::Connect(const std::string& host, int port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StringFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StringFormat("not an IPv4 address: '%s'", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IOError(StringFormat(
        "connect %s:%d: %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  host_ = host;
  port_ = port;
  return Status::OK();
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<JsonValue> LineClient::Call(const JsonValue& request) {
  ACQ_ASSIGN_OR_RETURN(std::string line, CallRaw(request.Dump()));
  return JsonValue::Parse(line);
}

Result<JsonValue> LineClient::CallWithRetry(const JsonValue& request,
                                            const RetryOptions& retry) {
  const int attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  double backoff_ms = retry.initial_backoff_ms;
  uint64_t seed = retry.jitter_seed;
  if (seed == 0) {
    seed = 0x9E3779B97F4A7C15ULL ^
           (reinterpret_cast<uintptr_t>(this) + retries_);
  }
  Rng rng(seed);
  Result<JsonValue> last = Status::IOError("client is not connected");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      double sleep_ms = backoff_ms;
      if (retry.jitter && backoff_ms > 0.0) {
        // Decorrelated jitter (prev-based, not attempt-based): grows like
        // exponential backoff in expectation but two clients rejected by
        // the same burst diverge after the first draw instead of
        // re-colliding every round.
        sleep_ms = std::min(
            retry.max_backoff_ms,
            rng.NextDouble(std::min(retry.initial_backoff_ms,
                                    retry.max_backoff_ms),
                           std::max(retry.initial_backoff_ms,
                                    backoff_ms * 3.0)));
        backoff_ms = sleep_ms;
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      if (!retry.jitter) {
        backoff_ms = std::min(backoff_ms * retry.backoff_multiplier,
                              retry.max_backoff_ms);
      }
      if (retry.reconnect && !connected() && !host_.empty()) {
        // Best effort: a failed reconnect just burns this attempt.
        if (!Connect(host_, port_).ok()) continue;
      }
    }
    last = Call(request);
    if (!last.ok()) {
      // Transport failure: the lockstep framing is gone, so the connection
      // cannot be reused even if the socket survived.
      Close();
      continue;
    }
    const bool unavailable = last->is_object() &&
                             !last->GetBool("ok", true) &&
                             last->GetString("code") == "Unavailable";
    if (!unavailable) return last;
  }
  return last;
}

Result<std::string> LineClient::CallRaw(const std::string& line) {
  ACQ_RETURN_IF_ERROR(SendLineRaw(line));
  return ReadLine();
}

Status LineClient::SendLineRaw(const std::string& line) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  std::string out = line;
  out.push_back('\n');
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError(StringFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::IOError("client is not connected");
  for (;;) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string response = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return response;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IOError(StringFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) return Status::IOError("connection closed by server");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> LineClient::CallStreaming(const JsonValue& request,
                                            const ProgressCallback& on_progress) {
  uint64_t frames_seen = 0;
  return StreamingExchange(request, on_progress, &frames_seen);
}

Result<JsonValue> LineClient::StreamingExchange(
    const JsonValue& request, const ProgressCallback& on_progress,
    uint64_t* frames_seen) {
  ACQ_RETURN_IF_ERROR(SendLineRaw(request.Dump()));
  for (;;) {
    ACQ_ASSIGN_OR_RETURN(std::string line, ReadLine());
    ACQ_ASSIGN_OR_RETURN(JsonValue parsed, JsonValue::Parse(line));
    if (parsed.is_object() && parsed.GetBool("progress", false)) {
      ++*frames_seen;
      if (on_progress) on_progress(parsed);
      continue;
    }
    return parsed;
  }
}

Result<JsonValue> LineClient::CallStreamingWithRetry(
    const JsonValue& request, const ProgressCallback& on_progress,
    const RetryOptions& retry) {
  const int attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  double backoff_ms = retry.initial_backoff_ms;
  uint64_t seed = retry.jitter_seed;
  if (seed == 0) {
    seed = 0x9E3779B97F4A7C15ULL ^
           (reinterpret_cast<uintptr_t>(this) + retries_);
  }
  Rng rng(seed);
  Result<JsonValue> last = Status::IOError("client is not connected");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      double sleep_ms = backoff_ms;
      if (retry.jitter && backoff_ms > 0.0) {
        sleep_ms = std::min(
            retry.max_backoff_ms,
            rng.NextDouble(std::min(retry.initial_backoff_ms,
                                    retry.max_backoff_ms),
                           std::max(retry.initial_backoff_ms,
                                    backoff_ms * 3.0)));
        backoff_ms = sleep_ms;
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      if (!retry.jitter) {
        backoff_ms = std::min(backoff_ms * retry.backoff_multiplier,
                              retry.max_backoff_ms);
      }
      if (retry.reconnect && !connected() && !host_.empty()) {
        if (!Connect(host_, port_).ok()) continue;
      }
    }
    uint64_t frames_seen = 0;
    last = StreamingExchange(request, on_progress, &frames_seen);
    if (!last.ok()) {
      Close();
      // A delivered PROGRESS frame proves the server admitted and started
      // this very run — its side effects (scans, cache seeding, tenant
      // accounting) are real. Retrying would execute the ACQ a second time
      // behind the caller's back, so surface the failure instead.
      if (frames_seen > 0) return last;
      continue;
    }
    const bool unavailable = last->is_object() &&
                             !last->GetBool("ok", true) &&
                             last->GetString("code") == "Unavailable";
    if (!unavailable) return last;
    // An Unavailable rejection after frames cannot happen (admission
    // precedes streaming), so plain retry is safe here.
  }
  return last;
}

}  // namespace acquire
