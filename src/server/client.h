#ifndef ACQUIRE_SERVER_CLIENT_H_
#define ACQUIRE_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "server/json.h"

namespace acquire {

/// Retry policy for LineClient::CallWithRetry. Transient failures —
/// transport IOErrors (connection dropped, injected recv/send faults) and
/// protocol-level {"ok":false,"code":"Unavailable"} rejections (admission
/// backpressure) — are retried with exponential backoff; everything else is
/// returned to the caller on the first attempt.
struct RetryOptions {
  int max_attempts = 5;           // total tries, including the first
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Reconnect before a retry whenever the transport failed (a half-sent
  /// request leaves the lockstep protocol unsynchronized, so the old
  /// connection is unusable anyway).
  bool reconnect = true;
  /// Decorrelated jitter: each sleep is drawn uniformly from
  /// [initial_backoff_ms, 3 * previous_sleep], capped at max_backoff_ms.
  /// Deterministic backoff synchronizes a fleet of clients rejected by the
  /// same admission burst — they all sleep the same schedule and collide
  /// again on every retry; jitter spreads them out. Disable only in tests
  /// that assert exact sleep sequences (backoff_multiplier then applies).
  bool jitter = true;
  /// Seed for the jitter stream; 0 derives a per-call seed from the
  /// client's address and retry count so concurrent clients decorrelate.
  uint64_t jitter_seed = 0;
};

/// Blocking client for AcqServer's newline-delimited JSON protocol: one
/// request line out, one response line back, in lockstep. Not thread-safe;
/// use one client per thread (the server happily serves many connections).
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to host:port (host is a dotted-quad address, e.g. 127.0.0.1).
  /// The endpoint is remembered for CallWithRetry reconnects.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `request` as one line and parses the response line. Transport
  /// failures are IOError; protocol-level failures still return the
  /// server's {"ok":false,...} object for the caller to inspect.
  Result<JsonValue> Call(const JsonValue& request);

  /// Call with transient-failure retries (see RetryOptions). Note that a
  /// retried SUBMIT may run twice server-side when the failure hit the
  /// response path — fine for idempotent read-only ACQs, which is all this
  /// protocol serves.
  Result<JsonValue> CallWithRetry(const JsonValue& request,
                                  const RetryOptions& retry = {});

  /// Raw round trip for protocol tests (e.g. sending malformed JSON).
  Result<std::string> CallRaw(const std::string& line);

  /// Receives each PROGRESS frame ({"progress":true,...}) of a streaming
  /// exchange, already parsed. Runs on the calling thread between reads.
  using ProgressCallback = std::function<void(const JsonValue&)>;

  /// Streaming round trip for SUBMITs carrying "progress": sends `request`,
  /// hands every PROGRESS frame line to `on_progress`, and returns the
  /// first non-frame line — the terminal reply, which the server guarantees
  /// is the last line of the exchange. Works for non-streaming requests too
  /// (zero frames, identical to Call).
  Result<JsonValue> CallStreaming(const JsonValue& request,
                                  const ProgressCallback& on_progress);

  /// CallStreaming with CallWithRetry's transient-failure policy, minus one
  /// crucial case: once a PROGRESS frame has been delivered, the server
  /// observably started this run — its side effects exist — so a transport
  /// failure after the first frame is returned to the caller instead of
  /// retried (a retry would silently run the ACQ a second time).
  Result<JsonValue> CallStreamingWithRetry(const JsonValue& request,
                                           const ProgressCallback& on_progress,
                                           const RetryOptions& retry = {});

  /// Cumulative retries performed by CallWithRetry (reconnect attempts
  /// count once per retried call).
  uint64_t retries() const { return retries_; }

 private:
  /// Sends one request line (no framing newline; it is appended here).
  Status SendLineRaw(const std::string& line);
  /// Blocks for the next full response line.
  Result<std::string> ReadLine();
  /// One streaming exchange; *frames_seen counts delivered PROGRESS frames
  /// (so retry wrappers can tell "failed before any side effect was
  /// observed" from "failed mid-stream").
  Result<JsonValue> StreamingExchange(const JsonValue& request,
                                      const ProgressCallback& on_progress,
                                      uint64_t* frames_seen);

  int fd_ = -1;
  std::string buffer_;  // bytes received past the last response line
  std::string host_;    // remembered endpoint for reconnects
  int port_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_CLIENT_H_
