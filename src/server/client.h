#ifndef ACQUIRE_SERVER_CLIENT_H_
#define ACQUIRE_SERVER_CLIENT_H_

#include <string>

#include "server/json.h"

namespace acquire {

/// Blocking client for AcqServer's newline-delimited JSON protocol: one
/// request line out, one response line back, in lockstep. Not thread-safe;
/// use one client per thread (the server happily serves many connections).
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to host:port (host is a dotted-quad address, e.g. 127.0.0.1).
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `request` as one line and parses the response line. Transport
  /// failures are IOError; protocol-level failures still return the
  /// server's {"ok":false,...} object for the caller to inspect.
  Result<JsonValue> Call(const JsonValue& request);

  /// Raw round trip for protocol tests (e.g. sending malformed JSON).
  Result<std::string> CallRaw(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last response line
};

}  // namespace acquire

#endif  // ACQUIRE_SERVER_CLIENT_H_
