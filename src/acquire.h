#ifndef ACQUIRE_ACQUIRE_H_
#define ACQUIRE_ACQUIRE_H_

/// Umbrella header for the ACQUIRE library: everything a typical user
/// needs to plan and process Aggregation Constrained Queries.
///
///   #include "acquire.h"
///
///   acquire::Catalog catalog;                  // data
///   acquire::Binder binder(&catalog);          // ACQ SQL front end
///   auto task = binder.PlanSql("SELECT * ...CONSTRAINT...NOREFINE...");
///   acquire::CachedEvaluationLayer layer(&*task);
///   auto outcome = acquire::ProcessAcq(*task, &layer);
///
/// Individual subsystem headers remain includable on their own.

#include "core/acquire.h"               // RunAcquire + options/result
#include "core/contract.h"              // contraction mode (Section 7.2)
#include "core/processor.h"             // ProcessAcq front door (Figure 2)
#include "core/report.h"                // change reports + Pareto filtering
#include "exec/approx_evaluation.h"     // sampling / histogram layers
#include "exec/backend.h"               // evaluation backend selection
#include "exec/materialize.h"           // refined-query result tuples
#include "exec/parallel_evaluation.h"   // multi-threaded evaluation
#include "exec/planner.h"               // programmatic QuerySpec API
#include "exec/thread_pool.h"           // persistent worker pool
#include "expr/custom_metric_dim.h"     // user-defined refinement metrics
#include "expr/ontology.h"              // categorical roll-ups (Section 7.3)
#include "index/backend_factory.h"      // EvalBackend -> layer
#include "index/cell_sorted.h"          // CSR cell-sorted backend
#include "index/grid_index.h"           // Section 7.4 grid index
#include "sql/binder.h"                 // SQL -> AcqTask
#include "sql/explain.h"                // plan introspection
#include "sql/printer.h"                // refined-query SQL rendering
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/persistence.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"
#include "workload/workload.h"

namespace acquire {

/// Library version (major.minor.patch).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace acquire

#endif  // ACQUIRE_ACQUIRE_H_
