#include "exec/parallel_evaluation.h"

#include <algorithm>
#include <thread>

#include "common/string_util.h"

namespace acquire {

ParallelEvaluationLayer::ParallelEvaluationLayer(const AcqTask* task,
                                                 size_t threads)
    : EvaluationLayer(task), threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(2u, std::thread::hardware_concurrency());
  }
}

Status ParallelEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  const size_t n = task_->relation->num_rows();
  const size_t d = task_->d();
  needed_.resize(n * d);
  agg_values_.resize(n);
  // Single-threaded: some dimensions (CategoricalDim) memoize internally
  // and are not safe to call concurrently.
  std::vector<double> row_needed;
  for (size_t row = 0; row < n; ++row) {
    ComputeNeeded(*task_, row, &row_needed);
    std::copy(row_needed.begin(), row_needed.end(),
              needed_.begin() + static_cast<ptrdiff_t>(row * d));
    agg_values_[row] = task_->AggValue(row);
  }
  prepared_ = true;
  return Status::OK();
}

Result<AggregateOps::State> ParallelEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  if (box.size() != task_->d()) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, task has %zu dimensions",
                     box.size(), task_->d()));
  }
  ++stats_.queries;
  const AggregateOps& ops = *task_->agg.ops;
  const size_t n = agg_values_.size();
  const size_t d = task_->d();
  stats_.tuples_scanned += n;

  const size_t workers = std::min(threads_, std::max<size_t>(1, n / 4096));
  if (workers <= 1) {
    AggregateOps::State state = ops.Init();
    for (size_t row = 0; row < n; ++row) {
      const double* needed = &needed_[row * d];
      bool admit = true;
      for (size_t i = 0; i < d; ++i) {
        if (!box[i].Admits(needed[i])) {
          admit = false;
          break;
        }
      }
      if (admit) ops.Add(&state, agg_values_[row]);
    }
    return state;
  }

  std::vector<AggregateOps::State> partials(workers, ops.Init());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      const size_t begin = w * chunk;
      const size_t end = std::min(n, begin + chunk);
      AggregateOps::State& state = partials[w];
      for (size_t row = begin; row < end; ++row) {
        const double* needed = &needed_[row * d];
        bool admit = true;
        for (size_t i = 0; i < d; ++i) {
          if (!box[i].Admits(needed[i])) {
            admit = false;
            break;
          }
        }
        if (admit) ops.Add(&state, agg_values_[row]);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  AggregateOps::State merged = ops.Init();
  for (const AggregateOps::State& partial : partials) {
    ops.Merge(&merged, partial);  // OSP combine across disjoint partitions
  }
  return merged;
}

}  // namespace acquire
