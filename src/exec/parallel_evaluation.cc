#include "exec/parallel_evaluation.h"

#include "exec/eval_kernel.h"

namespace acquire {

ParallelEvaluationLayer::ParallelEvaluationLayer(const AcqTask* task,
                                                 size_t threads)
    : EvaluationLayer(task) {
  if (threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::Shared();
  }
}

Status ParallelEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(*task_, pool_, &matrix_));
  ChargeBudget((matrix_.needed.size() + matrix_.agg_values.size()) *
               sizeof(double));
  prepared_ = true;
  return Status::OK();
}

Result<AggregateOps::State> ParallelEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(matrix_.rows, std::memory_order_relaxed);
  return ScanBoxOverMatrix(*task_->agg.ops, matrix_, box, pool_);
}

}  // namespace acquire
