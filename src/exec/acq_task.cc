#include "exec/acq_task.h"

#include "common/string_util.h"

namespace acquire {

std::string AcqTask::ToString() const {
  std::vector<std::string> preds;
  preds.reserve(dims.size());
  for (const RefinementDimPtr& dim : dims) preds.push_back(dim->label());
  return StringFormat(
      "SELECT * FROM %s CONSTRAINT %s %s WHERE %s", relation->name().c_str(),
      agg.ToString().c_str(), constraint.ToString().c_str(),
      Join(preds, " AND ").c_str());
}

}  // namespace acquire
