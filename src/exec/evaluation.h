#ifndef ACQUIRE_EXEC_EVALUATION_H_
#define ACQUIRE_EXEC_EVALUATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "exec/acq_task.h"

namespace acquire {

/// Grid coordinate in the refined space (one refinement level per
/// dimension; Section 4's grid queries).
using GridCoord = std::vector<int32_t>;

/// Hash of a grid coordinate stored as `d` contiguous int32 levels.
/// Multiply-xor per lane plus a final avalanche. Plain FNV-1a (the previous
/// hash) leaves the high bits almost untouched for the small dense levels
/// the expand phase actually produces (0..k on every axis), so
/// power-of-two tables saw clustered buckets and long probe chains; the
/// final mix spreads every input bit across the whole word.
inline uint64_t HashGridCoordSpan(const int32_t* v, size_t d) {
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(d);
  for (size_t i = 0; i < d; ++i) {
    h = (h ^ static_cast<uint32_t>(v[i])) * 0x9DDFEA08EB382D69ULL;
    h ^= h >> 29;
  }
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 32;
  return h;
}

struct GridCoordHash {
  size_t operator()(const GridCoord& c) const {
    return static_cast<size_t>(HashGridCoordSpan(c.data(), c.size()));
  }
};

/// Half-open-below PScore range on one dimension: admits tuples whose
/// needed PScore lies in (lo, hi]. lo < 0 means "from 0 inclusive", so
/// {-1, p} is the full refined predicate at PScore p and
/// {(u-1)*s, u*s} is grid cell u at step s.
struct PScoreRange {
  double lo = -1.0;
  double hi = 0.0;

  bool Admits(double needed) const { return needed > lo && needed <= hi; }
};

/// The shared needed-PScore materialization every prepared evaluation layer
/// sits on: a dimension-major (structure-of-arrays) tuple x dimension
/// matrix plus the per-row aggregate input. Dimension-major because every
/// box-query kernel walks one dimension across all rows at a time, so each
/// dimension is one contiguous stream. Built by BuildNeededMatrix
/// (exec/eval_kernel.h), optionally in parallel.
struct NeededMatrix {
  size_t rows = 0;
  size_t dims = 0;
  std::vector<double> needed;      // dims * rows, dimension-major
  std::vector<double> agg_values;  // rows

  const double* dim(size_t i) const { return needed.data() + i * rows; }
  double* mutable_dim(size_t i) { return needed.data() + i * rows; }
};

/// The paper's modular evaluation layer (Section 3): the component that
/// actually executes (sub-)queries against the data. ACQUIRE, the baselines
/// and the repartitioner all talk to it through box queries in PScore space.
///
/// Implementations (see exec/backend.h for driver-level selection):
///  * DirectEvaluationLayer — recomputes per-tuple refinement distances on
///    every call; each call models one SQL execution in the paper's
///    Postgres back end (cost: one full scan of the base relation).
///  * CachedEvaluationLayer — materializes the tuple x dimension
///    needed-PScore matrix once in Prepare(); calls still scan all tuples
///    but skip predicate-function evaluation. Models a DBMS with a
///    specialized access path.
///  * ParallelEvaluationLayer (exec/parallel_evaluation.h) — the cached
///    scan chunked across a persistent thread pool.
///  * GridIndexEvaluationLayer (index/grid_index.h) — Section 7.4's bitmap
///    grid index: cell-aligned boxes are answered in O(1).
///  * CellSortedEvaluationLayer (index/cell_sorted.h) — rows counting-sorted
///    into grid cells in a CSR layout: a cell query is one binary search
///    plus a contiguous fold, an aligned box merges per-cell states in
///    sorted key order.
class EvaluationLayer {
 public:
  struct ExecStats {
    uint64_t queries = 0;         // box queries executed
    uint64_t tuples_scanned = 0;  // tuples touched while answering them

    /// Per-phase driver timings, filled by RunAcquire / RunAcquireContract
    /// (never by the layer itself): generator time, cell/box execution
    /// time, and Eq. 17 merge time. The sequential explorer folds merges
    /// into explore_ms; only the batched explorer splits merge_ms out, and
    /// it overlaps expand with the other phases (layer prefetch), so the
    /// three can sum past elapsed_ms.
    double expand_ms = 0.0;
    double explore_ms = 0.0;
    double merge_ms = 0.0;

    /// How the batched explorer published each layer's Eq. 17 merges
    /// (core/parallel_merge.h), filled by RunAcquire. Sequential counts
    /// layers the adaptive controller, a failpoint, or an intra-layer
    /// dependency sent down the reference path (and every layer of a
    /// non-batched or shell-order run).
    uint64_t merge_layers_central = 0;
    uint64_t merge_layers_tree = 0;
    uint64_t merge_layers_radix = 0;
    uint64_t merge_layers_sequential = 0;

    /// Index build cost, filled by the layer itself: wall time spent inside
    /// Prepare() (0 for layers with a no-op Prepare), rows currently staged
    /// in the incremental-maintenance delta buffer, and how many times the
    /// staged deltas were absorbed into the main layout (index/cell_sorted,
    /// index/grid_index). Survives ResetStats — Prepare happens before the
    /// driver resets the per-run query counters.
    double prepare_ms = 0.0;
    uint64_t delta_rows = 0;
    uint64_t delta_merges = 0;
  };

  explicit EvaluationLayer(const AcqTask* task) : task_(task) {}
  virtual ~EvaluationLayer() = default;

  EvaluationLayer(const EvaluationLayer&) = delete;
  EvaluationLayer& operator=(const EvaluationLayer&) = delete;

  /// One-time setup (no-op for the direct layer).
  virtual Status Prepare() { return Status::OK(); }

  /// Aggregate state over tuples whose needed-PScore vector lies in `box`
  /// (one range per dimension, task->d() entries).
  virtual Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) = 0;

  /// Batch cell-query API for the Explore phase: the aggregate states of
  /// `count` grid cells at grid step `step`, where cell `u` covers
  /// ((u_i - 1) * step, u_i * step] on every dimension (CellRangeForLevel;
  /// identical to RefinedSpace::CellBox). Results are in input order and
  /// bit-identical to calling EvaluateBox on each cell box. The base
  /// implementation fans the per-cell calls out on the shared thread pool
  /// when the layer permits concurrent evaluation, else answers serially;
  /// indexed backends override it to answer the whole batch natively
  /// (CellSortedEvaluationLayer sweeps its CSR key array once).
  virtual Result<std::vector<AggregateOps::State>> EvaluateCells(
      const GridCoord* coords, size_t count, double step);

  /// Evaluates independent box queries, results in input order; fans out
  /// across the shared pool when SupportsConcurrentEvaluate() allows it,
  /// else evaluates serially. Per-box results are bit-identical to
  /// EvaluateBox either way.
  Result<std::vector<AggregateOps::State>> EvaluateBoxes(
      const std::vector<std::vector<PScoreRange>>& boxes);

  /// True when EvaluateBox may be called from several threads at once —
  /// in practice: the layer is prepared and everything behind EvaluateBox
  /// is read-only except the atomic counters.
  virtual bool SupportsConcurrentEvaluate() const { return false; }

  /// Full refined query at per-dimension PScores `pscores`: box
  /// (-inf, pscores_i]. Returns the *final* aggregate value.
  Result<double> EvaluateQueryValue(const std::vector<double>& pscores);

  /// Attaches the memory budget this layer's materializations and per-call
  /// scratch are charged against (nullptr detaches). Charges accumulated
  /// while no budget was attached — e.g. a lazy Prepare() triggered by the
  /// processor's origin evaluation before the driver resolved the run's
  /// budget — are flushed to the new budget immediately, so the prepared
  /// footprint is never lost to attachment order.
  void set_memory_budget(MemoryBudget* budget) {
    budget_ = budget;
    if (budget_ != nullptr && pending_budget_bytes_ > 0) {
      budget_->Charge(pending_budget_bytes_);
      pending_budget_bytes_ = 0;
    }
  }

  const AcqTask& task() const { return *task_; }
  ExecStats stats() const {
    ExecStats s;
    s.queries = stats_.queries.load(std::memory_order_relaxed);
    s.tuples_scanned = stats_.tuples_scanned.load(std::memory_order_relaxed);
    s.prepare_ms = prepare_ms_;
    s.delta_rows = delta_rows_;
    s.delta_merges = delta_merges_;
    return s;
  }
  void ResetStats() {
    stats_.queries.store(0, std::memory_order_relaxed);
    stats_.tuples_scanned.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Counters updated while answering queries. Atomic (relaxed) because
  /// EvaluateCells / EvaluateBoxes run concurrent EvaluateBox calls on the
  /// pool for layers that opt in via SupportsConcurrentEvaluate().
  struct AtomicExecStats {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> tuples_scanned{0};
  };

  /// Shared argument check for EvaluateBox implementations.
  Status CheckBox(const std::vector<PScoreRange>& box) const;

  /// Tallies `bytes` of layer-owned memory (prepared materializations,
  /// selection scratch) against the attached budget, or defers the charge
  /// until set_memory_budget attaches one. Never fails: exhaustion latches
  /// in the budget and the driver stops at its next poll.
  void ChargeBudget(uint64_t bytes) {
    if (bytes == 0) return;
    if (budget_ != nullptr) {
      budget_->Charge(bytes);
    } else {
      pending_budget_bytes_ += bytes;
    }
  }

  const AcqTask* task_;
  AtomicExecStats stats_;
  MemoryBudget* budget_ = nullptr;
  uint64_t pending_budget_bytes_ = 0;
  /// Build-cost observability (see ExecStats): written by Prepare / the
  /// delta-staging paths, which run before or between (never during)
  /// concurrent evaluation, so plain fields suffice.
  double prepare_ms_ = 0.0;
  uint64_t delta_rows_ = 0;
  uint64_t delta_merges_ = 0;
};

/// Scan-per-call layer; see EvaluationLayer docs.
class DirectEvaluationLayer final : public EvaluationLayer {
 public:
  explicit DirectEvaluationLayer(const AcqTask* task)
      : EvaluationLayer(task) {}

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

 private:
  bool scratch_charged_ = false;  // per-call vectors, charged once
};

/// Needed-PScore-matrix layer; see EvaluationLayer docs.
class CachedEvaluationLayer final : public EvaluationLayer {
 public:
  explicit CachedEvaluationLayer(const AcqTask* task)
      : EvaluationLayer(task) {}

  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Once the matrix is materialized, EvaluateBox only reads it.
  bool SupportsConcurrentEvaluate() const override { return prepared_; }

  /// The materialized tuple x dimension matrix (exposed for layers and
  /// benches that build on the same materialization).
  const NeededMatrix& matrix() const { return matrix_; }

 private:
  bool prepared_ = false;
  NeededMatrix matrix_;
};

/// Computes the needed-PScore vector of `row` under `task` (helper shared
/// by evaluation layers, baselines and tests).
void ComputeNeeded(const AcqTask& task, size_t row, std::vector<double>* out);

/// Grid level of a needed PScore at step `step`: level 0 admits exactly the
/// tuples the original predicate admits (needed == 0); level u > 0 covers
/// needed in ((u-1)*step, u*step]. Returns -1 for unreachable tuples.
int64_t PScoreLevel(double needed, double step);

/// The cell box of grid level `level` at step `step` on one dimension
/// (the inverse of PScoreLevel).
PScoreRange CellRangeForLevel(int64_t level, double step);

/// If `v` is (approximately) a non-negative integer multiple of `step`,
/// returns that multiple; otherwise -1.
int64_t AlignedGridMultiple(double v, double step);

/// Decomposes `box` into inclusive grid-level bounds per dimension when
/// every boundary is aligned to the `step` grid: dimension i covers levels
/// lo[i]..hi[i]. Returns false (outputs unspecified) when any boundary is
/// off-grid. A box that is exactly one cell yields lo == hi.
bool AlignedLevelBounds(const std::vector<PScoreRange>& box, double step,
                        std::vector<int64_t>* lo, std::vector<int64_t>* hi);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_EVALUATION_H_
