#ifndef ACQUIRE_EXEC_EVALUATION_H_
#define ACQUIRE_EXEC_EVALUATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/acq_task.h"

namespace acquire {

/// Grid coordinate in the refined space (one refinement level per
/// dimension; Section 4's grid queries).
using GridCoord = std::vector<int32_t>;

struct GridCoordHash {
  size_t operator()(const GridCoord& c) const {
    // FNV-1a over the raw level values.
    uint64_t h = 1469598103934665603ULL;
    for (int32_t v : c) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Half-open-below PScore range on one dimension: admits tuples whose
/// needed PScore lies in (lo, hi]. lo < 0 means "from 0 inclusive", so
/// {-1, p} is the full refined predicate at PScore p and
/// {(u-1)*s, u*s} is grid cell u at step s.
struct PScoreRange {
  double lo = -1.0;
  double hi = 0.0;

  bool Admits(double needed) const { return needed > lo && needed <= hi; }
};

/// The paper's modular evaluation layer (Section 3): the component that
/// actually executes (sub-)queries against the data. ACQUIRE, the baselines
/// and the repartitioner all talk to it through box queries in PScore space.
///
/// Implementations:
///  * DirectEvaluationLayer — recomputes per-tuple refinement distances on
///    every call; each call models one SQL execution in the paper's
///    Postgres back end (cost: one full scan of the base relation).
///  * CachedEvaluationLayer — materializes the tuple x dimension
///    needed-PScore matrix once in Prepare(); calls still scan all tuples
///    but skip predicate-function evaluation. Models a DBMS with a
///    specialized access path.
///  * GridIndexEvaluationLayer (index/grid_index.h) — Section 7.4's bitmap
///    grid index: cell-aligned boxes are answered in O(1).
class EvaluationLayer {
 public:
  struct ExecStats {
    uint64_t queries = 0;         // box queries executed
    uint64_t tuples_scanned = 0;  // tuples touched while answering them
  };

  explicit EvaluationLayer(const AcqTask* task) : task_(task) {}
  virtual ~EvaluationLayer() = default;

  EvaluationLayer(const EvaluationLayer&) = delete;
  EvaluationLayer& operator=(const EvaluationLayer&) = delete;

  /// One-time setup (no-op for the direct layer).
  virtual Status Prepare() { return Status::OK(); }

  /// Aggregate state over tuples whose needed-PScore vector lies in `box`
  /// (one range per dimension, task->d() entries).
  virtual Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) = 0;

  /// Full refined query at per-dimension PScores `pscores`: box
  /// (-inf, pscores_i]. Returns the *final* aggregate value.
  Result<double> EvaluateQueryValue(const std::vector<double>& pscores);

  const AcqTask& task() const { return *task_; }
  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats{}; }

 protected:
  const AcqTask* task_;
  ExecStats stats_;
};

/// Scan-per-call layer; see EvaluationLayer docs.
class DirectEvaluationLayer final : public EvaluationLayer {
 public:
  explicit DirectEvaluationLayer(const AcqTask* task)
      : EvaluationLayer(task) {}

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;
};

/// Needed-PScore-matrix layer; see EvaluationLayer docs.
class CachedEvaluationLayer final : public EvaluationLayer {
 public:
  explicit CachedEvaluationLayer(const AcqTask* task)
      : EvaluationLayer(task) {}

  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Row-major tuple x dimension matrix of needed PScores; exposed for the
  /// grid index, which builds on the same materialization.
  const std::vector<double>& needed_matrix() const { return needed_; }

 private:
  bool prepared_ = false;
  std::vector<double> needed_;  // num_rows * d, row-major
  std::vector<double> agg_values_;  // per-row aggregate input value
};

/// Computes the needed-PScore vector of `row` under `task` (helper shared
/// by evaluation layers, baselines and tests).
void ComputeNeeded(const AcqTask& task, size_t row, std::vector<double>* out);

/// Grid level of a needed PScore at step `step`: level 0 admits exactly the
/// tuples the original predicate admits (needed == 0); level u > 0 covers
/// needed in ((u-1)*step, u*step]. Returns -1 for unreachable tuples.
int64_t PScoreLevel(double needed, double step);

/// The cell box of grid level `level` at step `step` on one dimension
/// (the inverse of PScoreLevel).
PScoreRange CellRangeForLevel(int64_t level, double step);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_EVALUATION_H_
