#ifndef ACQUIRE_EXEC_EVAL_KERNEL_H_
#define ACQUIRE_EXEC_EVAL_KERNEL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/acq_task.h"
#include "exec/evaluation.h"
#include "exec/thread_pool.h"

namespace acquire {

/// Builds the matrix for `task` in one pass over the relation. With a pool
/// the row range is built in parallel; each dimension's internal
/// memoization is pre-resolved first (RefinementDim::PrecomputeNeeded), so
/// the concurrent NeededPScore calls are read-only.
Status BuildNeededMatrix(const AcqTask& task, ThreadPool* pool,
                         NeededMatrix* out);

/// Row-range variant for incremental index maintenance: builds the matrix of
/// relation rows [begin, end) only (out->rows == end - begin, row r of the
/// output is relation row begin + r). Per-dimension values are bit-identical
/// to the corresponding rows of a full BuildNeededMatrix — PrecomputeNeeded
/// is re-run first, so dimensions whose memoization depends on the relation
/// see the appended rows too.
Status BuildNeededMatrixRows(const AcqTask& task, size_t begin, size_t end,
                             ThreadPool* pool, NeededMatrix* out);

/// The one branchless predicate kernel behind every scanning layer.
/// Narrows a selection vector by one dimension: select[k] &= range admits
/// needed[k]. Callers start from an all-ones vector and apply each
/// dimension's stream in turn.
inline void RefineSelection(const double* needed, size_t count,
                            const PScoreRange& range, uint8_t* select) {
  const double lo = range.lo;
  const double hi = range.hi;
  for (size_t k = 0; k < count; ++k) {
    select[k] &= static_cast<uint8_t>((needed[k] > lo) & (needed[k] <= hi));
  }
}

/// Folds the selected rows' aggregate inputs into `state`.
inline void FoldSelected(const AggregateOps& ops, const double* values,
                         const uint8_t* select, size_t count,
                         AggregateOps::State* state) {
  for (size_t k = 0; k < count; ++k) {
    if (select[k]) ops.Add(state, values[k]);
  }
}

/// Folds a contiguous run of rows unconditionally (the cell-sorted layout
/// turns a cell query into exactly this).
inline void FoldRange(const AggregateOps& ops, const double* values,
                      size_t count, AggregateOps::State* state) {
  for (size_t k = 0; k < count; ++k) ops.Add(state, values[k]);
}

/// Evaluates one box query over rows [begin, end) of the matrix (serial;
/// scratch must hold at least end - begin bytes).
AggregateOps::State ScanBoxRange(const AggregateOps& ops,
                                 const NeededMatrix& matrix,
                                 const std::vector<PScoreRange>& box,
                                 size_t begin, size_t end, uint8_t* scratch);

/// Evaluates one box query over the whole matrix. With a pool (and enough
/// rows to amortize it) the scan is chunked across the pool and the
/// per-chunk partial states are merged in chunk order — deterministic
/// results for a fixed pool size (the OSP merge is what makes the
/// parallelization valid at all; Section 2.6).
Result<AggregateOps::State> ScanBoxOverMatrix(
    const AggregateOps& ops, const NeededMatrix& matrix,
    const std::vector<PScoreRange>& box, ThreadPool* pool = nullptr);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_EVAL_KERNEL_H_
