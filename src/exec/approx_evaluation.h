#ifndef ACQUIRE_EXEC_APPROX_EVALUATION_H_
#define ACQUIRE_EXEC_APPROX_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "exec/evaluation.h"

namespace acquire {

/// Section 3 notes that the evaluation layer "is modular and can be
/// replaced with other techniques such as estimation, and/or sampling".
/// These two layers are those replacements: they answer the same box
/// queries approximately, trading accuracy for speed, and plug into
/// RunAcquire unchanged.

/// Bernoulli-sampling layer: evaluates every box over a fixed row sample
/// and scales extrapolatable aggregates (COUNT, SUM) by 1/rate. AVG is the
/// sample average (unbiased without scaling); MIN/MAX are the unscaled
/// sample extrema (biased toward the interior — inherent to sampling).
/// UDAs are rejected because the layer cannot know how to extrapolate them.
class SamplingEvaluationLayer final : public EvaluationLayer {
 public:
  /// `rate` in (0, 1]; `seed` fixes the sample for reproducibility.
  SamplingEvaluationLayer(const AcqTask* task, double rate,
                          uint64_t seed = 1337);

  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  size_t sample_size() const { return sampled_rows_.size(); }
  double rate() const { return rate_; }

 private:
  double rate_;
  uint64_t seed_;
  bool prepared_ = false;
  std::vector<uint32_t> sampled_rows_;
  NeededMatrix matrix_;  // dimension-major over the sampled rows
};

/// Histogram-estimation layer for COUNT constraints: one equi-width
/// histogram of needed PScores per dimension, combined under the attribute
/// value independence assumption (the classic System-R style estimator):
///   COUNT(box) ~= N * prod_i P(needed_i in box_i).
/// Never touches tuples after Prepare(); each box costs O(d * buckets).
class HistogramEvaluationLayer final : public EvaluationLayer {
 public:
  HistogramEvaluationLayer(const AcqTask* task, size_t buckets_per_dim = 64);

  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  size_t buckets_per_dim() const { return buckets_; }

 private:
  /// Estimated fraction of tuples whose needed PScore on `dim` lies in
  /// `range`, by (partial-)bucket interpolation.
  double Selectivity(size_t dim, const PScoreRange& range) const;

  size_t buckets_;
  bool prepared_ = false;
  size_t total_rows_ = 0;
  size_t reachable_rows_ = 0;
  // Per dim: bucket width, counts, and the exact count of needed == 0
  // (kept out of the buckets — the zero spike dominates real predicates
  // and would wreck interpolation).
  std::vector<double> bucket_width_;
  std::vector<std::vector<double>> counts_;
  std::vector<double> zero_counts_;
};

}  // namespace acquire

#endif  // ACQUIRE_EXEC_APPROX_EVALUATION_H_
