#ifndef ACQUIRE_EXEC_FILTER_H_
#define ACQUIRE_EXEC_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace acquire {

/// Row indices of `table` satisfying `predicate` (which must already be
/// bound to the table's schema).
Result<std::vector<uint32_t>> SelectRows(const Table& table,
                                         const Expr& predicate);

/// Materializes the given rows of `table` into a new table named `name`.
TablePtr GatherRows(const Table& table, const std::vector<uint32_t>& rows,
                    std::string name);

/// Binds `predicate` to the table's schema and materializes matching rows.
Result<TablePtr> FilterTable(const TablePtr& table, const ExprPtr& predicate);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_FILTER_H_
