#include "exec/approx_evaluation.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"

namespace acquire {

SamplingEvaluationLayer::SamplingEvaluationLayer(const AcqTask* task,
                                                 double rate, uint64_t seed)
    : EvaluationLayer(task), rate_(rate), seed_(seed) {}

Status SamplingEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (rate_ <= 0.0 || rate_ > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0, 1]");
  }
  if (task_->agg.kind == AggregateKind::kUda) {
    return Status::Unsupported(
        "sampling layer cannot extrapolate user-defined aggregates");
  }
  Rng rng(seed_);
  const size_t n = task_->relation->num_rows();
  const size_t d = task_->d();
  for (size_t row = 0; row < n; ++row) {
    if (rng.NextBool(rate_)) sampled_rows_.push_back(static_cast<uint32_t>(row));
  }
  matrix_.rows = sampled_rows_.size();
  matrix_.dims = d;
  matrix_.needed.resize(matrix_.rows * d);
  matrix_.agg_values.resize(matrix_.rows);
  for (size_t i = 0; i < d; ++i) {
    const RefinementDim& dim = *task_->dims[i];
    double* col = matrix_.mutable_dim(i);
    for (size_t k = 0; k < sampled_rows_.size(); ++k) {
      col[k] = dim.NeededPScore(*task_->relation, sampled_rows_[k]);
    }
  }
  for (size_t k = 0; k < sampled_rows_.size(); ++k) {
    matrix_.agg_values[k] = task_->AggValue(sampled_rows_[k]);
  }
  prepared_ = true;
  return Status::OK();
}

Result<AggregateOps::State> SamplingEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(sampled_rows_.size(),
                                 std::memory_order_relaxed);
  ACQ_ASSIGN_OR_RETURN(AggregateOps::State state,
                       ScanBoxOverMatrix(*task_->agg.ops, matrix_, box));
  // Horvitz-Thompson scale-up for extrapolatable aggregates. AVG scales
  // both numerator and denominator (a no-op on the final value but keeps
  // the embedded COUNT meaningful); MIN/MAX cannot be extrapolated.
  switch (task_->agg.kind) {
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      for (double& component : state) component /= rate_;
      break;
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kUda:
      break;
  }
  return state;
}

HistogramEvaluationLayer::HistogramEvaluationLayer(const AcqTask* task,
                                                   size_t buckets_per_dim)
    : EvaluationLayer(task), buckets_(buckets_per_dim) {}

Status HistogramEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (buckets_ == 0) {
    return Status::InvalidArgument("need at least one histogram bucket");
  }
  if (task_->agg.kind != AggregateKind::kCount) {
    return Status::Unsupported(
        "histogram estimation supports COUNT constraints only");
  }
  const size_t n = task_->relation->num_rows();
  const size_t d = task_->d();
  total_rows_ = n;

  // Pass 1: per-dimension maxima of the finite needed PScores.
  std::vector<double> max_needed(d, 0.0);
  std::vector<std::vector<double>> all_needed(d);
  std::vector<double> row_needed;
  for (size_t row = 0; row < n; ++row) {
    ComputeNeeded(*task_, row, &row_needed);
    for (size_t i = 0; i < d; ++i) {
      if (std::isfinite(row_needed[i])) {
        max_needed[i] = std::max(max_needed[i], row_needed[i]);
        all_needed[i].push_back(row_needed[i]);
      }
    }
  }
  bucket_width_.assign(d, 1.0);
  counts_.assign(d, std::vector<double>(buckets_, 0.0));
  zero_counts_.assign(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    bucket_width_[i] =
        max_needed[i] > 0.0 ? max_needed[i] / static_cast<double>(buckets_)
                            : 1.0;
    for (double needed : all_needed[i]) {
      if (needed <= 0.0) {
        zero_counts_[i] += 1.0;
        continue;
      }
      // Bucket b covers (b*w, (b+1)*w].
      size_t b = static_cast<size_t>(std::ceil(needed / bucket_width_[i])) - 1;
      counts_[i][std::min(b, buckets_ - 1)] += 1.0;
    }
  }
  prepared_ = true;
  return Status::OK();
}

double HistogramEvaluationLayer::Selectivity(size_t dim,
                                             const PScoreRange& range) const {
  double mass = 0.0;
  if (range.lo < 0.0) mass += zero_counts_[dim];
  const double w = bucket_width_[dim];
  const double lo = std::max(range.lo, 0.0);
  for (size_t b = 0; b < buckets_; ++b) {
    double b_lo = static_cast<double>(b) * w;
    double b_hi = b_lo + w;
    double overlap = std::min(range.hi, b_hi) - std::max(lo, b_lo);
    if (overlap <= 0.0) continue;
    mass += counts_[dim][b] * std::min(1.0, overlap / w);
  }
  return total_rows_ == 0 ? 0.0 : mass / static_cast<double>(total_rows_);
}

Result<AggregateOps::State> HistogramEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  if (box.size() != task_->d()) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, task has %zu dimensions",
                     box.size(), task_->d()));
  }
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(buckets_ * task_->d(),  // bucket reads
                                 std::memory_order_relaxed);
  double fraction = 1.0;
  for (size_t i = 0; i < task_->d(); ++i) {
    fraction *= Selectivity(i, box[i]);
  }
  return AggregateOps::State{fraction * static_cast<double>(total_rows_)};
}

}  // namespace acquire
