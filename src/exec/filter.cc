#include "exec/filter.h"

namespace acquire {

Result<std::vector<uint32_t>> SelectRows(const Table& table,
                                         const Expr& predicate) {
  std::vector<uint32_t> rows;
  for (size_t r = 0, n = table.num_rows(); r < n; ++r) {
    ACQ_ASSIGN_OR_RETURN(bool keep, predicate.EvalBool(table, r));
    if (keep) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

TablePtr GatherRows(const Table& table, const std::vector<uint32_t>& rows,
                    std::string name) {
  auto out = std::make_shared<Table>(std::move(name), table.schema());
  out->ReserveRows(rows.size());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& src = table.column(c);
    Column& dst = out->mutable_column(c);
    switch (src.type()) {
      case DataType::kInt64: {
        const auto& data = src.int64_data();
        for (uint32_t r : rows) dst.AppendInt64(data[r]);
        break;
      }
      case DataType::kDouble: {
        const auto& data = src.double_data();
        for (uint32_t r : rows) dst.AppendDouble(data[r]);
        break;
      }
      case DataType::kString: {
        const auto& data = src.string_data();
        for (uint32_t r : rows) dst.AppendString(data[r]);
        break;
      }
    }
  }
  Status s = out->FinalizeAppend();
  (void)s;  // cannot fail: every column received exactly rows.size() values
  return out;
}

Result<TablePtr> FilterTable(const TablePtr& table, const ExprPtr& predicate) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (predicate == nullptr) return table;
  ACQ_RETURN_IF_ERROR(predicate->Bind(table->schema()));
  ACQ_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                       SelectRows(*table, *predicate));
  return GatherRows(*table, rows, table->name());
}

}  // namespace acquire
