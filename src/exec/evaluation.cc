#include "exec/evaluation.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace acquire {

void ComputeNeeded(const AcqTask& task, size_t row, std::vector<double>* out) {
  out->resize(task.d());
  for (size_t i = 0; i < task.d(); ++i) {
    (*out)[i] = task.dims[i]->NeededPScore(*task.relation, row);
  }
}

int64_t PScoreLevel(double needed, double step) {
  if (std::isinf(needed)) return -1;
  if (needed <= 0.0) return 0;
  return static_cast<int64_t>(std::ceil(needed / step));
}

PScoreRange CellRangeForLevel(int64_t level, double step) {
  if (level <= 0) return PScoreRange{-1.0, 0.0};
  return PScoreRange{static_cast<double>(level - 1) * step,
                     static_cast<double>(level) * step};
}

Result<double> EvaluationLayer::EvaluateQueryValue(
    const std::vector<double>& pscores) {
  std::vector<PScoreRange> box(pscores.size());
  for (size_t i = 0; i < pscores.size(); ++i) {
    box[i] = PScoreRange{-1.0, pscores[i]};
  }
  ACQ_ASSIGN_OR_RETURN(AggregateOps::State state, EvaluateBox(box));
  return task_->agg.ops->Final(state);
}

Result<AggregateOps::State> DirectEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (box.size() != task_->d()) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, task has %zu dimensions",
                     box.size(), task_->d()));
  }
  ++stats_.queries;
  const Table& rel = *task_->relation;
  const AggregateOps& ops = *task_->agg.ops;
  AggregateOps::State state = ops.Init();
  const size_t n = rel.num_rows();
  const size_t d = task_->d();
  stats_.tuples_scanned += n;
  for (size_t row = 0; row < n; ++row) {
    bool admit = true;
    for (size_t i = 0; i < d; ++i) {
      double needed = task_->dims[i]->NeededPScore(rel, row);
      if (!box[i].Admits(needed)) {
        admit = false;
        break;
      }
    }
    if (admit) ops.Add(&state, task_->AggValue(row));
  }
  return state;
}

Status CachedEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  const size_t n = task_->relation->num_rows();
  const size_t d = task_->d();
  needed_.resize(n * d);
  agg_values_.resize(n);
  std::vector<double> row_needed;
  for (size_t row = 0; row < n; ++row) {
    ComputeNeeded(*task_, row, &row_needed);
    std::copy(row_needed.begin(), row_needed.end(),
              needed_.begin() + static_cast<ptrdiff_t>(row * d));
    agg_values_[row] = task_->AggValue(row);
  }
  prepared_ = true;
  return Status::OK();
}

Result<AggregateOps::State> CachedEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  if (box.size() != task_->d()) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, task has %zu dimensions",
                     box.size(), task_->d()));
  }
  ++stats_.queries;
  const AggregateOps& ops = *task_->agg.ops;
  AggregateOps::State state = ops.Init();
  const size_t n = agg_values_.size();
  const size_t d = task_->d();
  stats_.tuples_scanned += n;
  for (size_t row = 0; row < n; ++row) {
    const double* needed = &needed_[row * d];
    bool admit = true;
    for (size_t i = 0; i < d; ++i) {
      if (!box[i].Admits(needed[i])) {
        admit = false;
        break;
      }
    }
    if (admit) ops.Add(&state, agg_values_[row]);
  }
  return state;
}

}  // namespace acquire
