#include "exec/evaluation.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"
#include "exec/thread_pool.h"

namespace acquire {

namespace {

constexpr double kAlignEps = 1e-9;

bool NearlyEqual(double a, double b) {
  return std::fabs(a - b) <=
         kAlignEps * std::max({1.0, std::fabs(a), std::fabs(b)});
}

}  // namespace

void ComputeNeeded(const AcqTask& task, size_t row, std::vector<double>* out) {
  out->resize(task.d());
  for (size_t i = 0; i < task.d(); ++i) {
    (*out)[i] = task.dims[i]->NeededPScore(*task.relation, row);
  }
}

int64_t PScoreLevel(double needed, double step) {
  if (std::isinf(needed)) return -1;
  if (needed <= 0.0) return 0;
  return static_cast<int64_t>(std::ceil(needed / step));
}

PScoreRange CellRangeForLevel(int64_t level, double step) {
  if (level <= 0) return PScoreRange{-1.0, 0.0};
  return PScoreRange{static_cast<double>(level - 1) * step,
                     static_cast<double>(level) * step};
}

int64_t AlignedGridMultiple(double v, double step) {
  if (v < -kAlignEps) return -1;
  double q = v / step;
  int64_t u = static_cast<int64_t>(std::llround(q));
  if (u < 0) return -1;
  return NearlyEqual(static_cast<double>(u) * step, v) ? u : -1;
}

bool AlignedLevelBounds(const std::vector<PScoreRange>& box, double step,
                        std::vector<int64_t>* lo, std::vector<int64_t>* hi) {
  lo->resize(box.size());
  hi->resize(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    int64_t hi_mult = AlignedGridMultiple(box[i].hi, step);
    if (hi_mult < 0) return false;
    (*hi)[i] = hi_mult;
    if (box[i].lo < 0.0) {
      (*lo)[i] = 0;
    } else {
      int64_t lo_mult = AlignedGridMultiple(box[i].lo, step);
      if (lo_mult < 0 || lo_mult >= hi_mult) return false;
      (*lo)[i] = lo_mult + 1;
    }
  }
  return true;
}

Status EvaluationLayer::CheckBox(const std::vector<PScoreRange>& box) const {
  if (box.size() != task_->d()) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, task has %zu dimensions",
                     box.size(), task_->d()));
  }
  return Status::OK();
}

Result<std::vector<AggregateOps::State>> EvaluationLayer::EvaluateBoxes(
    const std::vector<std::vector<PScoreRange>>& boxes) {
  std::vector<AggregateOps::State> states(boxes.size());
  if (boxes.empty()) return states;
  if (boxes.size() == 1 || !SupportsConcurrentEvaluate()) {
    for (size_t q = 0; q < boxes.size(); ++q) {
      ACQ_ASSIGN_OR_RETURN(states[q], EvaluateBox(boxes[q]));
    }
    return states;
  }
  // Each box is evaluated exactly as in the serial path — only the order
  // the independent calls run in changes, so results stay bit-identical.
  std::mutex mu;
  Status first_error;
  ThreadPool::Shared().ParallelFor(
      boxes.size(), /*min_chunk=*/1,
      [&](size_t, size_t begin, size_t end) {
        for (size_t q = begin; q < end; ++q) {
          auto state = EvaluateBox(boxes[q]);
          if (!state.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (first_error.ok()) first_error = state.status();
            return;
          }
          states[q] = std::move(state).value();
        }
      });
  ACQ_RETURN_IF_ERROR(first_error);
  return states;
}

Result<std::vector<AggregateOps::State>> EvaluationLayer::EvaluateCells(
    const GridCoord* coords, size_t count, double step) {
  const size_t d = task_->d();
  std::vector<std::vector<PScoreRange>> boxes(count);
  for (size_t q = 0; q < count; ++q) {
    if (coords[q].size() != d) {
      return Status::InvalidArgument(
          StringFormat("cell coordinate has %zu levels, task has %zu "
                       "dimensions", coords[q].size(), d));
    }
    boxes[q].resize(d);
    for (size_t i = 0; i < d; ++i) {
      boxes[q][i] = CellRangeForLevel(coords[q][i], step);
    }
  }
  return EvaluateBoxes(boxes);
}

Result<double> EvaluationLayer::EvaluateQueryValue(
    const std::vector<double>& pscores) {
  std::vector<PScoreRange> box(pscores.size());
  for (size_t i = 0; i < pscores.size(); ++i) {
    box[i] = PScoreRange{-1.0, pscores[i]};
  }
  ACQ_ASSIGN_OR_RETURN(AggregateOps::State state, EvaluateBox(box));
  return task_->agg.ops->Final(state);
}

Result<AggregateOps::State> DirectEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const Table& rel = *task_->relation;
  const AggregateOps& ops = *task_->agg.ops;
  const size_t n = rel.num_rows();
  const size_t d = task_->d();
  stats_.tuples_scanned.fetch_add(n, std::memory_order_relaxed);
  // The selection vector and needed/aggregate stream are reallocated per
  // call but bounded by one row-sized pair, so their footprint is charged
  // once, not per query.
  if (!scratch_charged_) {
    scratch_charged_ = true;
    ChargeBudget(n * (sizeof(uint8_t) + sizeof(double)));
  }
  // Same selection kernel as the prepared layers, but the per-dimension
  // needed stream is recomputed on every call — that is this layer's cost
  // model (one full SQL execution per box).
  std::vector<uint8_t> select(n, uint8_t{1});
  std::vector<double> stream(n);
  for (size_t i = 0; i < d; ++i) {
    const RefinementDim& dim = *task_->dims[i];
    for (size_t row = 0; row < n; ++row) {
      stream[row] = dim.NeededPScore(rel, row);
    }
    RefineSelection(stream.data(), n, box[i], select.data());
  }
  for (size_t row = 0; row < n; ++row) {
    stream[row] = task_->AggValue(row);
  }
  AggregateOps::State state = ops.Init();
  FoldSelected(ops, stream.data(), select.data(), n, &state);
  return state;
}

Status CachedEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  Stopwatch prepare_sw;
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(*task_, /*pool=*/nullptr, &matrix_));
  ChargeBudget((matrix_.needed.size() + matrix_.agg_values.size()) *
               sizeof(double));
  prepare_ms_ += prepare_sw.ElapsedMillis();
  prepared_ = true;
  return Status::OK();
}

Result<AggregateOps::State> CachedEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(matrix_.rows, std::memory_order_relaxed);
  return ScanBoxOverMatrix(*task_->agg.ops, matrix_, box);
}

}  // namespace acquire
