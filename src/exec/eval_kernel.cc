#include "exec/eval_kernel.h"

#include <algorithm>

#include "common/string_util.h"

namespace acquire {

namespace {

// Below this the chunking/merge overhead beats the win of a second thread.
constexpr size_t kMinRowsPerChunk = 4096;

}  // namespace

Status BuildNeededMatrix(const AcqTask& task, ThreadPool* pool,
                         NeededMatrix* out) {
  return BuildNeededMatrixRows(task, 0, task.relation->num_rows(), pool, out);
}

Status BuildNeededMatrixRows(const AcqTask& task, size_t begin, size_t end,
                             ThreadPool* pool, NeededMatrix* out) {
  const Table& rel = *task.relation;
  if (begin > end || end > rel.num_rows()) {
    return Status::InvalidArgument(
        StringFormat("row range [%zu, %zu) out of bounds (relation has %zu "
                     "rows)", begin, end, rel.num_rows()));
  }
  const size_t n = end - begin;
  const size_t d = task.d();
  out->rows = n;
  out->dims = d;
  out->needed.resize(n * d);
  out->agg_values.resize(n);
  for (const RefinementDimPtr& dim : task.dims) {
    ACQ_RETURN_IF_ERROR(dim->PrecomputeNeeded(rel));
  }
  auto fill = [&](size_t /*chunk*/, size_t lo, size_t hi) {
    for (size_t i = 0; i < d; ++i) {
      const RefinementDim& dim = *task.dims[i];
      double* col = out->mutable_dim(i);
      for (size_t row = lo; row < hi; ++row) {
        col[row] = dim.NeededPScore(rel, begin + row);
      }
    }
    for (size_t row = lo; row < hi; ++row) {
      out->agg_values[row] = task.AggValue(begin + row);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, kMinRowsPerChunk, fill);
  } else {
    fill(0, 0, n);
  }
  return Status::OK();
}

AggregateOps::State ScanBoxRange(const AggregateOps& ops,
                                 const NeededMatrix& matrix,
                                 const std::vector<PScoreRange>& box,
                                 size_t begin, size_t end, uint8_t* scratch) {
  const size_t count = end - begin;
  std::fill(scratch, scratch + count, uint8_t{1});
  for (size_t i = 0; i < matrix.dims; ++i) {
    RefineSelection(matrix.dim(i) + begin, count, box[i], scratch);
  }
  AggregateOps::State state = ops.Init();
  FoldSelected(ops, matrix.agg_values.data() + begin, scratch, count, &state);
  return state;
}

Result<AggregateOps::State> ScanBoxOverMatrix(
    const AggregateOps& ops, const NeededMatrix& matrix,
    const std::vector<PScoreRange>& box, ThreadPool* pool) {
  if (box.size() != matrix.dims) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, matrix has %zu dimensions",
                     box.size(), matrix.dims));
  }
  const size_t n = matrix.rows;
  if (pool == nullptr || pool->NumChunks(n, kMinRowsPerChunk) <= 1) {
    std::vector<uint8_t> scratch(n);
    return ScanBoxRange(ops, matrix, box, 0, n, scratch.data());
  }
  const size_t chunks = pool->NumChunks(n, kMinRowsPerChunk);
  std::vector<AggregateOps::State> partials(chunks, ops.Init());
  pool->ParallelFor(n, kMinRowsPerChunk,
                    [&](size_t chunk, size_t begin, size_t end) {
                      std::vector<uint8_t> scratch(end - begin);
                      partials[chunk] = ScanBoxRange(ops, matrix, box, begin,
                                                     end, scratch.data());
                    });
  AggregateOps::State merged = ops.Init();
  for (const AggregateOps::State& partial : partials) {
    ops.Merge(&merged, partial);  // chunk order => deterministic result
  }
  return merged;
}

}  // namespace acquire
