#include "exec/backend.h"

#include <algorithm>
#include <cctype>

namespace acquire {

const char* EvalBackendToString(EvalBackend backend) {
  switch (backend) {
    case EvalBackend::kAuto:
      return "auto";
    case EvalBackend::kDirect:
      return "direct";
    case EvalBackend::kCached:
      return "cached";
    case EvalBackend::kParallel:
      return "parallel";
    case EvalBackend::kGridIndex:
      return "gridindex";
    case EvalBackend::kCellSorted:
      return "cellsorted";
  }
  return "?";
}

Result<EvalBackend> EvalBackendFromString(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (EvalBackend b :
       {EvalBackend::kAuto, EvalBackend::kDirect, EvalBackend::kCached,
        EvalBackend::kParallel, EvalBackend::kGridIndex,
        EvalBackend::kCellSorted}) {
    if (lower == EvalBackendToString(b)) return b;
  }
  return Status::InvalidArgument("unknown evaluation backend: " + name);
}

}  // namespace acquire
