#ifndef ACQUIRE_EXEC_JOIN_H_
#define ACQUIRE_EXEC_JOIN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace acquire {

/// Inner equi-join of `left` and `right` on one column pair; hash build on
/// the smaller input. Output schema is left fields followed by right fields
/// (qualifiers preserved, so duplicate bare names stay resolvable).
Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_column,
                          const std::string& right_column,
                          std::string out_name);

/// Band join: emits pairs with |left_column - right_column| <= band.
/// Implemented as sort on the right input + per-left-row range probe, so it
/// degrades gracefully as the band widens. band = 0 is an equi-join on
/// numeric keys. Used to materialize the base relation of refinable join
/// predicates (Section 2.4), where `band` is the band cap of the JoinDim.
Result<TablePtr> BandJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_column,
                          const std::string& right_column, double band,
                          std::string out_name);

/// Theta/band join over arbitrary numeric predicate functions (Section
/// 2.4's non-equi joins): emits pairs whose delta
///   f_left(l) - f_right(r)
/// lies in [delta_lo, delta_hi] (use +/-infinity for one-sided thetas).
/// `left_function` / `right_function` are bound against the respective
/// input schemas; rows where a function fails to evaluate are skipped.
/// Sort-based: right rows ordered by f_right, one range probe per left row.
Result<TablePtr> ExprBandJoin(const TablePtr& left, const TablePtr& right,
                              const ExprPtr& left_function,
                              const ExprPtr& right_function, double delta_lo,
                              double delta_hi, std::string out_name);

/// Shared helper: materializes matched (left_row, right_row) pairs into a
/// table over the concatenated schema.
TablePtr MaterializeJoinPairs(const Table& left, const Table& right,
                              const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                              std::string out_name);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_JOIN_H_
