#include "exec/materialize.h"

#include "common/string_util.h"
#include "exec/filter.h"

namespace acquire {

Result<TablePtr> MaterializeRefinedQuery(const AcqTask& task,
                                         const std::vector<double>& pscores) {
  if (pscores.size() != task.d()) {
    return Status::InvalidArgument(
        StringFormat("refinement vector has %zu entries, task has %zu "
                     "dimensions", pscores.size(), task.d()));
  }
  const Table& rel = *task.relation;
  std::vector<uint32_t> rows;
  for (size_t row = 0; row < rel.num_rows(); ++row) {
    bool admit = true;
    for (size_t i = 0; i < task.d(); ++i) {
      if (task.dims[i]->NeededPScore(rel, row) > pscores[i]) {
        admit = false;
        break;
      }
    }
    if (admit) rows.push_back(static_cast<uint32_t>(row));
  }
  return GatherRows(rel, rows, rel.name() + "_refined");
}

Result<TablePtr> MaterializeOriginalQuery(const AcqTask& task) {
  return MaterializeRefinedQuery(task, std::vector<double>(task.d(), 0.0));
}

}  // namespace acquire
