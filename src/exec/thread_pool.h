#ifndef ACQUIRE_EXEC_THREAD_POOL_H_
#define ACQUIRE_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace acquire {

/// Persistent worker pool for the evaluation layers. Threads are spawned
/// once and reused across every ParallelFor submission, replacing the
/// spawn-per-EvaluateBox pattern the parallel layer started with: a box
/// query on a prepared layer is microseconds of work, so thread creation
/// used to dominate it.
///
/// Determinism contract: chunk boundaries depend only on (n, min_chunk,
/// num_threads), never on scheduling, so a caller that keeps per-chunk
/// partial aggregates and merges them in chunk order gets bit-identical
/// results on every run (see ScanBoxOverMatrix).
class ThreadPool {
 public:
  /// `num_threads` = 0 sizes the pool to the hardware concurrency
  /// (at least 1 worker either way).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Number of chunks ParallelFor will split [0, n) into: enough to feed
  /// every runner (workers + the calling thread) while keeping chunks of at
  /// least `min_chunk` elements.
  size_t NumChunks(size_t n, size_t min_chunk) const;

  /// Runs body(chunk_index, begin, end) over a deterministic chunking of
  /// [0, n); blocks until every chunk finished. The calling thread
  /// participates, so progress is guaranteed even while the workers are
  /// busy with other submissions. If any chunk throws, the first exception
  /// (in completion order) is rethrown here after all chunks settle.
  /// n == 0 is a no-op.
  void ParallelFor(size_t n, size_t min_chunk,
                   const std::function<void(size_t, size_t, size_t)>& body);

  /// Enqueues one task for a worker and returns immediately; the future
  /// becomes ready (rethrowing any exception) when the task finishes.
  /// Unlike ParallelFor the calling thread does not participate — this is
  /// for overlapping independent work with the caller's own (e.g. the
  /// batched explorer prefetching the next expand layer).
  std::future<void> Submit(std::function<void()> task);

  /// Deadlock-safe join for code that may itself be running on a pool
  /// worker (the ACQ server schedules whole runs onto this pool, and a run
  /// blocks on its layer-prefetch future): while `future` is not ready, the
  /// calling thread drains queued tasks instead of sleeping, so a future
  /// whose task is still queued behind other submissions cannot wait on a
  /// worker that is itself waiting. Once the queue is empty the wait
  /// degrades to a plain timed wait (the task is running on another
  /// thread). Rethrows the task's exception like future.get().
  void HelpWhileWaiting(std::future<void>& future);

  /// Process-wide default pool (hardware-sized, created on first use and
  /// intentionally never destroyed so late static destructors can use it).
  /// The ACQUIRE_POOL_THREADS environment variable overrides the size
  /// (read once, at first use).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace acquire

#endif  // ACQUIRE_EXEC_THREAD_POOL_H_
