#include "exec/join.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/string_util.h"

namespace acquire {

TablePtr MaterializeJoinPairs(
    const Table& left, const Table& right,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    std::string out_name) {
  Schema joined = Schema::Concat(left.schema(), right.schema());
  auto out = std::make_shared<Table>(std::move(out_name), joined);
  out->ReserveRows(pairs.size());

  auto copy_side = [&](const Table& src, size_t col_offset, bool is_left) {
    for (size_t c = 0; c < src.num_columns(); ++c) {
      const Column& in = src.column(c);
      Column& dst = out->mutable_column(col_offset + c);
      switch (in.type()) {
        case DataType::kInt64: {
          const auto& data = in.int64_data();
          for (const auto& p : pairs)
            dst.AppendInt64(data[is_left ? p.first : p.second]);
          break;
        }
        case DataType::kDouble: {
          const auto& data = in.double_data();
          for (const auto& p : pairs)
            dst.AppendDouble(data[is_left ? p.first : p.second]);
          break;
        }
        case DataType::kString: {
          const auto& data = in.string_data();
          for (const auto& p : pairs)
            dst.AppendString(data[is_left ? p.first : p.second]);
          break;
        }
      }
    }
  };
  copy_side(left, 0, /*is_left=*/true);
  copy_side(right, left.num_columns(), /*is_left=*/false);
  Status s = out->FinalizeAppend();
  (void)s;  // columns are rectangular by construction
  return out;
}

namespace {

// Hash key for join columns; int64 keys hash directly, doubles through
// their bit pattern (exact equality semantics), strings by content.
struct JoinKeyExtractor {
  const Column* column;

  bool is_string() const { return column->type() == DataType::kString; }

  uint64_t NumericKey(size_t row) const {
    if (column->type() == DataType::kInt64) {
      return static_cast<uint64_t>(column->int64_data()[row]);
    }
    double d = column->double_data()[row];
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  }

  const std::string& StringKey(size_t row) const {
    return column->string_data()[row];
  }
};

}  // namespace

Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_column,
                          const std::string& right_column,
                          std::string out_name) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join input");
  }
  ACQ_ASSIGN_OR_RETURN(size_t lcol, left->schema().FieldIndex(left_column));
  ACQ_ASSIGN_OR_RETURN(size_t rcol, right->schema().FieldIndex(right_column));
  DataType lt = left->schema().field(lcol).type;
  DataType rt = right->schema().field(rcol).type;
  if ((lt == DataType::kString) != (rt == DataType::kString)) {
    return Status::TypeError(StringFormat(
        "join key type mismatch: %s vs %s", left_column.c_str(),
        right_column.c_str()));
  }
  if (lt != rt && (lt == DataType::kString || rt == DataType::kString)) {
    return Status::TypeError("string/non-string join keys");
  }
  // Mixed int64/double numeric keys would need widening; require equal types
  // to keep equality semantics exact.
  if (lt != rt) {
    return Status::TypeError(
        "join keys must have identical types (int64 vs double mismatch)");
  }

  JoinKeyExtractor lk{&left->column(lcol)};
  JoinKeyExtractor rk{&right->column(rcol)};
  std::vector<std::pair<uint32_t, uint32_t>> pairs;

  if (lk.is_string()) {
    std::unordered_map<std::string, std::vector<uint32_t>> build;
    build.reserve(right->num_rows());
    for (size_t r = 0; r < right->num_rows(); ++r) {
      build[rk.StringKey(r)].push_back(static_cast<uint32_t>(r));
    }
    for (size_t l = 0; l < left->num_rows(); ++l) {
      auto it = build.find(lk.StringKey(l));
      if (it == build.end()) continue;
      for (uint32_t r : it->second) {
        pairs.emplace_back(static_cast<uint32_t>(l), r);
      }
    }
  } else {
    std::unordered_map<uint64_t, std::vector<uint32_t>> build;
    build.reserve(right->num_rows());
    for (size_t r = 0; r < right->num_rows(); ++r) {
      build[rk.NumericKey(r)].push_back(static_cast<uint32_t>(r));
    }
    for (size_t l = 0; l < left->num_rows(); ++l) {
      auto it = build.find(lk.NumericKey(l));
      if (it == build.end()) continue;
      for (uint32_t r : it->second) {
        pairs.emplace_back(static_cast<uint32_t>(l), r);
      }
    }
  }
  return MaterializeJoinPairs(*left, *right, pairs, std::move(out_name));
}

Result<TablePtr> BandJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_column,
                          const std::string& right_column, double band,
                          std::string out_name) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join input");
  }
  if (band < 0) return Status::InvalidArgument("negative join band");
  ACQ_ASSIGN_OR_RETURN(size_t lcol, left->schema().FieldIndex(left_column));
  ACQ_ASSIGN_OR_RETURN(size_t rcol, right->schema().FieldIndex(right_column));
  if (!IsNumeric(left->schema().field(lcol).type) ||
      !IsNumeric(right->schema().field(rcol).type)) {
    return Status::TypeError("band join requires numeric keys");
  }

  // Sort right rows by key, probe a [v - band, v + band] window per left row.
  const Column& rc = right->column(rcol);
  std::vector<std::pair<double, uint32_t>> sorted;
  sorted.reserve(right->num_rows());
  for (size_t r = 0; r < right->num_rows(); ++r) {
    sorted.emplace_back(rc.GetDouble(r), static_cast<uint32_t>(r));
  }
  std::sort(sorted.begin(), sorted.end());

  const Column& lc = left->column(lcol);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t l = 0; l < left->num_rows(); ++l) {
    double v = lc.GetDouble(l);
    auto lo = std::lower_bound(
        sorted.begin(), sorted.end(), std::make_pair(v - band, uint32_t{0}));
    for (auto it = lo; it != sorted.end() && it->first <= v + band; ++it) {
      pairs.emplace_back(static_cast<uint32_t>(l), it->second);
    }
  }
  return MaterializeJoinPairs(*left, *right, pairs, std::move(out_name));
}

Result<TablePtr> ExprBandJoin(const TablePtr& left, const TablePtr& right,
                              const ExprPtr& left_function,
                              const ExprPtr& right_function, double delta_lo,
                              double delta_hi, std::string out_name) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join input");
  }
  if (left_function == nullptr || right_function == nullptr) {
    return Status::InvalidArgument("null join function");
  }
  if (delta_lo > delta_hi) {
    return Status::InvalidArgument("empty join delta interval");
  }
  ACQ_RETURN_IF_ERROR(left_function->Bind(left->schema()));
  ACQ_RETURN_IF_ERROR(right_function->Bind(right->schema()));

  auto evaluate_side = [](const Table& table, const Expr& function) {
    std::vector<std::pair<double, uint32_t>> values;
    values.reserve(table.num_rows());
    for (size_t row = 0; row < table.num_rows(); ++row) {
      auto value = function.Eval(table, row);
      if (!value.ok()) continue;
      auto v = value->AsDouble();
      if (!v.ok()) continue;
      values.emplace_back(*v, static_cast<uint32_t>(row));
    }
    return values;
  };

  std::vector<std::pair<double, uint32_t>> left_values =
      evaluate_side(*left, *left_function);
  std::vector<std::pair<double, uint32_t>> sorted_right =
      evaluate_side(*right, *right_function);
  std::sort(sorted_right.begin(), sorted_right.end());

  // delta = f_left - f_right in [lo, hi]  <=>  f_right in [f1-hi, f1-lo].
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& [f1, lrow] : left_values) {
    auto begin = std::lower_bound(
        sorted_right.begin(), sorted_right.end(),
        std::make_pair(f1 - delta_hi, uint32_t{0}));
    for (auto it = begin; it != sorted_right.end() && it->first <= f1 - delta_lo;
         ++it) {
      pairs.emplace_back(lrow, it->second);
    }
  }
  return MaterializeJoinPairs(*left, *right, pairs, std::move(out_name));
}

}  // namespace acquire
