#ifndef ACQUIRE_EXEC_AGGREGATE_H_
#define ACQUIRE_EXEC_AGGREGATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace acquire {

/// Aggregates supported directly. AVG decomposes into SUM and COUNT
/// (Section 2.6); kUda is a user-defined aggregate registered with
/// UdaRegistry and required to satisfy the Optimal Substructure Property.
enum class AggregateKind { kCount, kSum, kMin, kMax, kAvg, kUda };

const char* AggregateKindToString(AggregateKind kind);

/// Comparison operator of the CONSTRAINT clause. The paper focuses on
/// expansion, so only =, >= and > are admitted (Section 2.1).
enum class ConstraintOp { kEq, kGe, kGt };

const char* ConstraintOpToString(ConstraintOp op);

/// Type-erased OSP aggregate: states of disjoint tuple sets can be merged
/// into the state of their union without revisiting tuples. This is exactly
/// the property (Section 2.6) that makes the Explore phase's sub-query
/// recurrences (Eq. 17) valid.
class AggregateOps {
 public:
  /// Small inline state; e.g. {count}, {sum}, {min}, or {sum, count} for AVG.
  using State = std::vector<double>;

  virtual ~AggregateOps() = default;

  /// Identity state (aggregate of the empty set).
  virtual State Init() const = 0;

  /// Folds one tuple's aggregate-column value into `state`. COUNT ignores
  /// `value`.
  virtual void Add(State* state, double value) const = 0;

  /// OSP combine: `state` becomes the aggregate of the union of the two
  /// disjoint tuple sets.
  virtual void Merge(State* state, const State& other) const = 0;

  /// Final scalar (e.g. sum/count for AVG). Empty-set conventions: COUNT
  /// and SUM yield 0, MIN/MAX yield +/-infinity, AVG yields 0.
  virtual double Final(const State& state) const = 0;

  virtual const char* name() const = 0;
};

/// Built-in OSP implementations; singletons with static lifetime.
const AggregateOps& CountOps();
const AggregateOps& SumOps();
const AggregateOps& MinOps();
const AggregateOps& MaxOps();
const AggregateOps& AvgOps();

/// Resolves a non-UDA kind to its ops.
const AggregateOps& GetBuiltinOps(AggregateKind kind);

/// AggregateOps assembled from lambdas; the easiest way to define a UDA.
class LambdaAggregateOps final : public AggregateOps {
 public:
  LambdaAggregateOps(std::string name, State init,
                     std::function<void(State*, double)> add,
                     std::function<void(State*, const State&)> merge,
                     std::function<double(const State&)> final_fn);

  State Init() const override { return init_; }
  void Add(State* state, double value) const override { add_(state, value); }
  void Merge(State* state, const State& other) const override {
    merge_(state, other);
  }
  double Final(const State& state) const override { return final_(state); }
  const char* name() const override { return name_.c_str(); }

 private:
  std::string name_;
  State init_;
  std::function<void(State*, double)> add_;
  std::function<void(State*, const State&)> merge_;
  std::function<double(const State&)> final_;
};

/// Process-wide registry for user-defined OSP aggregates.
class UdaRegistry {
 public:
  static UdaRegistry& Instance();

  Status Register(std::unique_ptr<AggregateOps> ops);
  Result<const AggregateOps*> Lookup(const std::string& name) const;

 private:
  UdaRegistry() = default;
  std::vector<std::unique_ptr<AggregateOps>> udas_;
};

/// The CONSTRAINT clause: AGG(column) op target (Section 2.1). Bind()
/// resolves the column against the base relation's schema.
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCount;
  std::string column;    // empty for COUNT(*)
  std::string uda_name;  // set when kind == kUda

  // Filled by Bind().
  const AggregateOps* ops = nullptr;
  int col_index = -1;  // -1 for COUNT(*)

  Status Bind(const Schema& schema);

  /// e.g. "SUM(ps_availqty)" or "COUNT(*)".
  std::string ToString() const;
};

/// Target side of the CONSTRAINT clause.
struct Constraint {
  ConstraintOp op = ConstraintOp::kEq;
  double target = 0.0;  // Aexp

  /// True when `actual` satisfies the comparison exactly (before applying
  /// the delta tolerance, which is the error function's job).
  bool SatisfiedExactly(double actual) const;

  std::string ToString() const;
};

}  // namespace acquire

#endif  // ACQUIRE_EXEC_AGGREGATE_H_
