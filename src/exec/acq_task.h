#ifndef ACQUIRE_EXEC_ACQ_TASK_H_
#define ACQUIRE_EXEC_ACQ_TASK_H_

#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/backend.h"
#include "expr/refinement_dim.h"
#include "storage/table.h"

namespace acquire {

/// A fully planned Aggregation Constrained Query, the unit of work every
/// technique (ACQUIRE and the baselines) consumes.
///
/// `relation` is the materialized base relation: the joined tables with all
/// NOREFINE predicates applied and refinable predicates *removed* — it
/// contains every tuple any refinement could admit. `dims` are the axes of
/// the refined space; a tuple belongs to the refined query at PScore vector
/// p iff NeededPScore_i <= p_i for every dimension i.
struct AcqTask {
  TablePtr relation;
  std::vector<RefinementDimPtr> dims;
  AggregateSpec agg;
  Constraint constraint;
  /// Display forms of the NOREFINE predicates already folded into
  /// `relation` (used when rendering complete refined queries).
  std::vector<std::string> fixed_predicate_labels;
  /// FROM-clause table names of the original query (display only).
  std::vector<std::string> table_names;
  /// Which evaluation backend the driver should run this task on
  /// (index/backend_factory.h resolves it; kAuto lets the driver pick).
  EvalBackend eval_backend = EvalBackend::kAuto;

  /// Number of refinable predicates d (the refined-space dimensionality).
  size_t d() const { return dims.size(); }

  /// The aggregate-column value fed to AggregateOps::Add for `row`
  /// (0 for COUNT(*), whose Add ignores it).
  double AggValue(size_t row) const {
    return agg.col_index < 0
               ? 0.0
               : relation->column(static_cast<size_t>(agg.col_index))
                     .GetDouble(row);
  }

  /// Human-readable description of the original (unrefined) query.
  std::string ToString() const;
};

}  // namespace acquire

#endif  // ACQUIRE_EXEC_ACQ_TASK_H_
