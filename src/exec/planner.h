#ifndef ACQUIRE_EXEC_PLANNER_H_
#define ACQUIRE_EXEC_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/acq_task.h"
#include "exec/backend.h"
#include "expr/expr.h"
#include "expr/ontology.h"
#include "storage/catalog.h"

namespace acquire {

/// One WHERE-clause numeric comparison. Refinable predicates become refined
/// space dimensions; non-refinable ones are fixed filters (NOREFINE).
struct SelectPredicateSpec {
  std::string column;
  CompareOp op = CompareOp::kLt;
  double bound = 0.0;
  bool refinable = true;
  /// Relative importance for weighted norms (Section 7.1); larger weight =
  /// more reluctant to refine.
  double weight = 1.0;
  /// Optional per-predicate refinement cap in PScore units (Section 7.1).
  std::optional<double> max_refinement;
};

/// One join clause. Non-refinable joins execute as exact hash joins;
/// refinable joins become JoinDims over a band-join-materialized relation.
struct JoinClauseSpec {
  std::string left_column;
  std::string right_column;
  bool refinable = false;
  /// Widest band a refinable join may reach (MaxPScore of the JoinDim).
  /// <= 0 picks a default of 5% of the joint key span.
  double band_cap = 0.0;
  double weight = 1.0;
};

/// Refinable predicate over an arbitrary numeric function of one
/// relation's attributes (Section 2.2's predicate functions):
/// `function <op> bound`, e.g. "l_quantity * l_extendedprice < 5000".
struct ExprPredicateSpec {
  ExprPtr function;
  CompareOp op = CompareOp::kLt;
  double bound = 0.0;
  bool refinable = true;
  double weight = 1.0;
  std::optional<double> max_refinement;
};

/// Non-equi join clause (Section 2.4): `left_function <op> right_function`
/// with each side a numeric function over one table's attributes, e.g.
/// "2 * A.x < 3 * B.x". Refinement widens the accepted band of
/// delta = left - right; the PScore denominator is 100 (join semantics).
struct ExprJoinClauseSpec {
  ExprPtr left_function;
  ExprPtr right_function;
  CompareOp op = CompareOp::kLt;
  bool refinable = true;
  /// Widest delta-band expansion; <= 0 picks 5% of the joint value span.
  double band_cap = 0.0;
  double weight = 1.0;
};

/// Refinable categorical predicate `column IN (categories)` relaxed by
/// ontology roll-ups (Section 7.3).
struct CategoricalPredicateSpec {
  std::string column;
  std::vector<std::string> categories;
  /// Not owned; must outlive the planned task.
  const OntologyTree* ontology = nullptr;
  double weight = 1.0;
  /// PScore charged per roll-up step; <= 0 picks 100 / tree height.
  double pscore_per_rollup = 0.0;
};

/// Declarative form of an ACQ; the programmatic public API (the SQL binder
/// lowers parsed queries to this same struct).
struct QuerySpec {
  std::vector<std::string> tables;
  std::vector<JoinClauseSpec> joins;
  std::vector<ExprJoinClauseSpec> expr_joins;
  std::vector<SelectPredicateSpec> predicates;
  std::vector<ExprPredicateSpec> expr_predicates;
  std::vector<CategoricalPredicateSpec> categorical_predicates;
  /// Arbitrary NOREFINE filters (IN lists, string equality, ...). Bound by
  /// the planner; single-table filters are pushed below the joins.
  std::vector<ExprPtr> fixed_filters;

  AggregateKind agg_kind = AggregateKind::kCount;
  std::string agg_column;  // empty for COUNT(*)
  std::string uda_name;    // for agg_kind == kUda
  ConstraintOp constraint_op = ConstraintOp::kEq;
  double target = 0.0;  // Aexp

  /// Evaluation backend the driver should run the planned task on.
  EvalBackend eval_backend = EvalBackend::kAuto;
};

/// Plans `spec` against `catalog` into an executable AcqTask:
///  1. applies pushed-down NOREFINE filters per table,
///  2. materializes the join tree (hash joins; band joins for refinable
///     joins, widened to their band cap),
///  3. applies remaining multi-table NOREFINE filters,
///  4. builds one RefinementDim per refinable predicate with domain bounds
///     taken from the resulting relation's column statistics, and
///  5. binds the aggregate and constraint.
///
/// Refinable equality predicates (x = c) are expanded into an upper and a
/// lower dimension, mirroring the paper's range-predicate rewrite.
Result<AcqTask> PlanAcqTask(const Catalog& catalog, const QuerySpec& spec);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_PLANNER_H_
