#include "exec/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "exec/filter.h"
#include "exec/join.h"

namespace acquire {

namespace {

// Lowers a non-refinable SelectPredicateSpec to a filter expression.
ExprPtr PredicateToExpr(const SelectPredicateSpec& pred) {
  return Expr::Compare(pred.op, Expr::Column(pred.column),
                       Expr::Literal(Value(pred.bound)));
}

// Default band cap for a refinable join: 5% of the joint key span.
constexpr double kDefaultBandFraction = 0.05;

constexpr double kInf = std::numeric_limits<double>::infinity();

double JointSpan(const Table& a, size_t ca, const Table& b, size_t cb) {
  const ColumnStats& sa = a.Stats(ca);
  const ColumnStats& sb = b.Stats(cb);
  double lo = std::min(sa.valid ? sa.min : 0.0, sb.valid ? sb.min : 0.0);
  double hi = std::max(sa.valid ? sa.max : 0.0, sb.valid ? sb.max : 0.0);
  return std::max(0.0, hi - lo);
}

// Min/max of a bound numeric function over a table's rows.
Result<ColumnStats> ExprValueStats(const Table& table, const Expr& function) {
  ColumnStats stats;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    auto value = function.Eval(table, row);
    if (!value.ok()) continue;
    auto v = value->AsDouble();
    if (!v.ok()) {
      return Status::TypeError("predicate function is not numeric: " +
                               function.ToString());
    }
    if (!stats.valid) {
      stats.min = stats.max = *v;
      stats.valid = true;
    } else {
      stats.min = std::min(stats.min, *v);
      stats.max = std::max(stats.max, *v);
    }
  }
  if (!stats.valid) {
    return Status::InvalidArgument(
        "predicate function evaluates on no rows: " + function.ToString());
  }
  return stats;
}

// Base accepted interval of delta = left - right for a theta join op.
struct DeltaInterval {
  double lo;
  double hi;
};

Result<DeltaInterval> BaseDeltaInterval(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return DeltaInterval{-kInf, 0.0};
    case CompareOp::kGt:
    case CompareOp::kGe:
      return DeltaInterval{0.0, kInf};
    case CompareOp::kEq:
      return DeltaInterval{0.0, 0.0};
    case CompareOp::kNe:
      break;
  }
  return Status::Unsupported("!= join predicates are not refinable");
}

// Deferred construction of a refinable non-equi join's dimension(s): the
// delta function's domain must be measured over the final relation.
struct PendingExprJoinDim {
  ExprPtr delta;  // left_function - right_function
  CompareOp op;
  double cap;
  double weight;
};

}  // namespace

Result<AcqTask> PlanAcqTask(const Catalog& catalog, const QuerySpec& spec) {
  if (spec.tables.empty()) {
    return Status::InvalidArgument("query references no tables");
  }

  // --- Load inputs. ---
  std::vector<TablePtr> inputs;
  inputs.reserve(spec.tables.size());
  for (const std::string& name : spec.tables) {
    ACQ_ASSIGN_OR_RETURN(TablePtr t, catalog.GetTable(name));
    inputs.push_back(std::move(t));
  }

  // --- Collect NOREFINE filters (explicit + non-refinable predicates). ---
  std::vector<ExprPtr> fixed;
  for (const SelectPredicateSpec& pred : spec.predicates) {
    if (!pred.refinable) fixed.push_back(PredicateToExpr(pred));
  }
  for (const ExprPredicateSpec& pred : spec.expr_predicates) {
    if (!pred.refinable) {
      fixed.push_back(Expr::Compare(pred.op, pred.function,
                                    Expr::Literal(Value(pred.bound))));
    }
  }
  fixed.insert(fixed.end(), spec.fixed_filters.begin(),
               spec.fixed_filters.end());

  // Push single-table filters below the joins; everything else is applied
  // to the joined relation. A filter is pushable when it binds to exactly
  // one input schema.
  std::vector<std::vector<ExprPtr>> per_table(inputs.size());
  std::vector<ExprPtr> post_join;
  for (const ExprPtr& f : fixed) {
    int hit = -1;
    int hits = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (f->Bind(inputs[i]->schema()).ok()) {
        hit = static_cast<int>(i);
        ++hits;
      }
    }
    if (hits == 1) {
      per_table[static_cast<size_t>(hit)].push_back(f);
    } else {
      post_join.push_back(f);
    }
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (per_table[i].empty()) continue;
    ExprPtr conj = per_table[i].size() == 1 ? per_table[i][0]
                                            : Expr::And(per_table[i]);
    ACQ_ASSIGN_OR_RETURN(inputs[i], FilterTable(inputs[i], conj));
  }

  // --- Fold the join tree. ---
  std::vector<RefinementDimPtr> dims;
  std::vector<std::string> fixed_join_labels;
  TablePtr relation = inputs[0];
  std::vector<bool> joined(inputs.size(), false);
  joined[0] = true;
  std::vector<bool> join_used(spec.joins.size(), false);
  std::vector<bool> expr_join_used(spec.expr_joins.size(), false);
  std::vector<PendingExprJoinDim> pending_join_dims;
  size_t joined_count = 1;

  // Folds one non-equi join clause against an unjoined input; returns true
  // on progress.
  auto try_expr_join = [&](const ExprJoinClauseSpec& jc,
                           size_t t) -> Result<bool> {
    // Orient: one side's function must bind to the current relation, the
    // other to the candidate table.
    bool forward = jc.left_function->Bind(relation->schema()).ok() &&
                   jc.right_function->Bind(inputs[t]->schema()).ok();
    bool backward = !forward &&
                    jc.right_function->Bind(relation->schema()).ok() &&
                    jc.left_function->Bind(inputs[t]->schema()).ok();
    if (!forward && !backward) return false;
    const ExprPtr& rel_fn = forward ? jc.left_function : jc.right_function;
    const ExprPtr& tab_fn = forward ? jc.right_function : jc.left_function;

    ACQ_ASSIGN_OR_RETURN(DeltaInterval base, BaseDeltaInterval(jc.op));
    double cap = 0.0;
    if (jc.refinable) {
      cap = jc.band_cap;
      if (cap <= 0.0) {
        ACQ_RETURN_IF_ERROR(rel_fn->Bind(relation->schema()));
        ACQ_RETURN_IF_ERROR(tab_fn->Bind(inputs[t]->schema()));
        ACQ_ASSIGN_OR_RETURN(ColumnStats rs, ExprValueStats(*relation, *rel_fn));
        ACQ_ASSIGN_OR_RETURN(ColumnStats ts, ExprValueStats(*inputs[t], *tab_fn));
        cap = kDefaultBandFraction * ((rs.max - rs.min) + (ts.max - ts.min));
        if (cap <= 0.0) cap = 1.0;
      }
      if (std::isfinite(base.hi)) base.hi += cap;
      if (std::isfinite(base.lo)) base.lo -= cap;
    }
    // The materialization delta is f_rel - f_tab; when the clause is
    // oriented backward that is -(left - right), so flip the interval.
    DeltaInterval mat = base;
    if (backward) mat = DeltaInterval{-base.hi, -base.lo};
    ACQ_ASSIGN_OR_RETURN(relation,
                         ExprBandJoin(relation, inputs[t], rel_fn, tab_fn,
                                      mat.lo, mat.hi, "join"));
    if (!jc.refinable) {
      // The band interval is closed; re-apply the clause exactly so strict
      // thetas (<, >) drop boundary pairs.
      ACQ_ASSIGN_OR_RETURN(
          relation,
          FilterTable(relation, Expr::Compare(jc.op, jc.left_function,
                                              jc.right_function)));
    }
    if (jc.refinable) {
      pending_join_dims.push_back(PendingExprJoinDim{
          Expr::Arith(ArithOp::kSub, jc.left_function, jc.right_function),
          jc.op, cap, jc.weight});
    } else {
      fixed_join_labels.push_back(jc.left_function->ToString() + " " +
                                  CompareOpToString(jc.op) + " " +
                                  jc.right_function->ToString());
    }
    return true;
  };

  while (joined_count < inputs.size()) {
    bool progressed = false;
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      if (join_used[j]) continue;
      const JoinClauseSpec& jc = spec.joins[j];
      // Orient the clause: one side must bind to the current relation, the
      // other to a not-yet-joined input.
      for (size_t t = 0; t < inputs.size(); ++t) {
        if (joined[t]) continue;
        std::string rel_col, tab_col;
        if (relation->schema().TryFieldIndex(jc.left_column).has_value() &&
            inputs[t]->schema().TryFieldIndex(jc.right_column).has_value()) {
          rel_col = jc.left_column;
          tab_col = jc.right_column;
        } else if (relation->schema().TryFieldIndex(jc.right_column).has_value() &&
                   inputs[t]->schema().TryFieldIndex(jc.left_column).has_value()) {
          rel_col = jc.right_column;
          tab_col = jc.left_column;
        } else {
          continue;
        }
        if (jc.refinable) {
          ACQ_ASSIGN_OR_RETURN(size_t rc, relation->schema().FieldIndex(rel_col));
          ACQ_ASSIGN_OR_RETURN(size_t tc, inputs[t]->schema().FieldIndex(tab_col));
          double cap = jc.band_cap > 0.0
                           ? jc.band_cap
                           : kDefaultBandFraction *
                                 JointSpan(*relation, rc, *inputs[t], tc);
          ACQ_ASSIGN_OR_RETURN(
              relation, BandJoin(relation, inputs[t], rel_col, tab_col, cap,
                                 "join"));
          auto dim = std::make_unique<JoinDim>(jc.left_column, jc.right_column,
                                               cap);
          dim->set_weight(jc.weight);
          dims.push_back(std::move(dim));
        } else {
          ACQ_ASSIGN_OR_RETURN(
              relation,
              HashJoin(relation, inputs[t], rel_col, tab_col, "join"));
          fixed_join_labels.push_back(jc.left_column + " = " +
                                      jc.right_column);
        }
        joined[t] = true;
        join_used[j] = true;
        ++joined_count;
        progressed = true;
        break;
      }
      if (progressed) break;
    }
    if (!progressed) {
      for (size_t j = 0; j < spec.expr_joins.size() && !progressed; ++j) {
        if (expr_join_used[j]) continue;
        for (size_t t = 0; t < inputs.size() && !progressed; ++t) {
          if (joined[t]) continue;
          ACQ_ASSIGN_OR_RETURN(bool folded,
                               try_expr_join(spec.expr_joins[j], t));
          if (folded) {
            joined[t] = true;
            expr_join_used[j] = true;
            ++joined_count;
            progressed = true;
          }
        }
      }
    }
    if (!progressed) {
      return Status::InvalidArgument(
          "join clauses do not connect all tables (cross products are not "
          "supported)");
    }
  }

  // --- Remaining NOREFINE filters over the joined relation. ---
  if (!post_join.empty()) {
    ExprPtr conj =
        post_join.size() == 1 ? post_join[0] : Expr::And(post_join);
    ACQ_ASSIGN_OR_RETURN(relation, FilterTable(relation, conj));
  }

  if (relation->num_rows() == 0) {
    return Status::InvalidArgument(
        "base relation is empty: the NOREFINE predicates admit no tuples, "
        "so no refinement can reach the aggregate target");
  }

  // --- Refinable select predicates become dimensions. ---
  for (const SelectPredicateSpec& pred : spec.predicates) {
    if (!pred.refinable) continue;
    ACQ_ASSIGN_OR_RETURN(size_t idx, relation->schema().FieldIndex(pred.column));
    const ColumnStats& stats = relation->Stats(idx);
    if (!stats.valid) {
      return Status::TypeError("refinable predicate on non-numeric column: " +
                               pred.column);
    }
    auto add_dim = [&](bool is_upper, bool strict) {
      auto dim = std::make_unique<NumericDim>(pred.column, is_upper,
                                              pred.bound, strict, stats.min,
                                              stats.max);
      dim->set_weight(pred.weight);
      if (pred.max_refinement.has_value()) {
        dim->set_max_refinement(*pred.max_refinement);
      }
      dims.push_back(std::move(dim));
    };
    switch (pred.op) {
      case CompareOp::kLt:
        add_dim(/*is_upper=*/true, /*strict=*/true);
        break;
      case CompareOp::kLe:
        add_dim(/*is_upper=*/true, /*strict=*/false);
        break;
      case CompareOp::kGt:
        add_dim(/*is_upper=*/false, /*strict=*/true);
        break;
      case CompareOp::kGe:
        add_dim(/*is_upper=*/false, /*strict=*/false);
        break;
      case CompareOp::kEq:
        // Point interval; refines like the two sides of a range predicate
        // (Section 2.2's range rewrite applied to a degenerate range).
        add_dim(/*is_upper=*/true, /*strict=*/false);
        add_dim(/*is_upper=*/false, /*strict=*/false);
        break;
      case CompareOp::kNe:
        return Status::Unsupported("refinable != predicates are not defined");
    }
  }

  // --- Refinable predicate-function (arithmetic) predicates. ---
  for (const ExprPredicateSpec& pred : spec.expr_predicates) {
    if (!pred.refinable) continue;
    ACQ_RETURN_IF_ERROR(pred.function->Bind(relation->schema()));
    ACQ_ASSIGN_OR_RETURN(ColumnStats stats,
                         ExprValueStats(*relation, *pred.function));
    auto add_dim = [&](bool is_upper, bool strict) {
      auto dim = std::make_unique<ExprDim>(pred.function, is_upper,
                                           pred.bound, strict, stats.min,
                                           stats.max);
      dim->set_weight(pred.weight);
      if (pred.max_refinement.has_value()) {
        dim->set_max_refinement(*pred.max_refinement);
      }
      dims.push_back(std::move(dim));
    };
    switch (pred.op) {
      case CompareOp::kLt:
        add_dim(true, true);
        break;
      case CompareOp::kLe:
        add_dim(true, false);
        break;
      case CompareOp::kGt:
        add_dim(false, true);
        break;
      case CompareOp::kGe:
        add_dim(false, false);
        break;
      case CompareOp::kEq:
        add_dim(true, false);
        add_dim(false, false);
        break;
      case CompareOp::kNe:
        return Status::Unsupported("refinable != predicates are not defined");
    }
  }

  // --- Refinable non-equi join dimensions (delta-band semantics). ---
  for (const PendingExprJoinDim& pending : pending_join_dims) {
    ACQ_RETURN_IF_ERROR(pending.delta->Bind(relation->schema()));
    ACQ_ASSIGN_OR_RETURN(ColumnStats stats,
                         ExprValueStats(*relation, *pending.delta));
    auto add_dim = [&](bool is_upper, bool strict) {
      auto dim = std::make_unique<ExprDim>(pending.delta, is_upper, 0.0,
                                           strict, stats.min, stats.max,
                                           /*pscore_denominator=*/100.0);
      dim->set_weight(pending.weight);
      dim->set_max_refinement(pending.cap);
      dims.push_back(std::move(dim));
    };
    switch (pending.op) {
      case CompareOp::kLt:
        add_dim(true, true);
        break;
      case CompareOp::kLe:
        add_dim(true, false);
        break;
      case CompareOp::kGt:
        add_dim(false, true);
        break;
      case CompareOp::kGe:
        add_dim(false, false);
        break;
      case CompareOp::kEq:
        add_dim(true, false);
        add_dim(false, false);
        break;
      case CompareOp::kNe:
        return Status::Internal("unreachable: != joins rejected earlier");
    }
  }

  // --- Refinable categorical predicates (Section 7.3). ---
  for (const CategoricalPredicateSpec& pred : spec.categorical_predicates) {
    if (pred.ontology == nullptr) {
      return Status::InvalidArgument(
          "categorical predicate needs an ontology: " + pred.column);
    }
    auto dim = std::make_unique<CategoricalDim>(
        pred.column, pred.categories, pred.ontology, pred.pscore_per_rollup);
    dim->set_weight(pred.weight);
    dims.push_back(std::move(dim));
  }

  if (dims.empty()) {
    return Status::InvalidArgument(
        "query has no refinable predicates; mark at least one predicate "
        "without NOREFINE");
  }

  // --- Bind dimensions, aggregate, constraint. ---
  for (const RefinementDimPtr& dim : dims) {
    ACQ_RETURN_IF_ERROR(dim->Bind(relation->schema()));
  }

  AcqTask task;
  task.relation = std::move(relation);
  task.dims = std::move(dims);
  task.table_names = spec.tables;
  task.eval_backend = spec.eval_backend;
  task.fixed_predicate_labels = std::move(fixed_join_labels);
  for (const SelectPredicateSpec& pred : spec.predicates) {
    if (!pred.refinable) {
      task.fixed_predicate_labels.push_back(PredicateToExpr(pred)->ToString());
    }
  }
  for (const ExprPredicateSpec& pred : spec.expr_predicates) {
    if (!pred.refinable) {
      task.fixed_predicate_labels.push_back(
          pred.function->ToString() + " " + CompareOpToString(pred.op) + " " +
          Value(pred.bound).ToString());
    }
  }
  for (const ExprPtr& f : spec.fixed_filters) {
    task.fixed_predicate_labels.push_back(f->ToString());
  }
  task.agg.kind = spec.agg_kind;
  task.agg.column = spec.agg_column;
  task.agg.uda_name = spec.uda_name;
  ACQ_RETURN_IF_ERROR(task.agg.Bind(task.relation->schema()));
  task.constraint.op = spec.constraint_op;
  task.constraint.target = spec.target;
  if (task.constraint.target <= 0.0) {
    return Status::InvalidArgument(
        "CONSTRAINT target must be a positive number (Section 2.1)");
  }
  return task;
}

}  // namespace acquire
