#ifndef ACQUIRE_EXEC_BACKEND_H_
#define ACQUIRE_EXEC_BACKEND_H_

#include <string>

#include "common/result.h"

namespace acquire {

/// Which evaluation-layer implementation answers box queries for a task.
/// kAuto lets the driver pick (currently the cell-sorted backend: grid
/// queries — the only queries Algorithm 3 issues — are cell-aligned, and
/// the CSR layout answers those in O(log cells) instead of O(n * d)).
enum class EvalBackend {
  kAuto,
  kDirect,     // scan + recompute per call ("Postgres mode")
  kCached,     // materialized needed matrix, serial scan per call
  kParallel,   // materialized matrix, pool-chunked scan per call
  kGridIndex,  // Section 7.4 hash-grid of per-cell aggregate states
  kCellSorted, // CSR cell layout: binary search + contiguous fold
};

const char* EvalBackendToString(EvalBackend backend);

/// Parses the names EvalBackendToString emits (case-insensitive);
/// InvalidArgument otherwise.
Result<EvalBackend> EvalBackendFromString(const std::string& name);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_BACKEND_H_
