#ifndef ACQUIRE_EXEC_PARALLEL_EVALUATION_H_
#define ACQUIRE_EXEC_PARALLEL_EVALUATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/evaluation.h"
#include "exec/thread_pool.h"

namespace acquire {

/// Multi-threaded evaluation layer: Prepare() materializes the per-tuple
/// refinement-distance matrix once (in parallel), and every box query is
/// folded over row chunks on a persistent thread pool, with the per-chunk
/// partial states merged in chunk order. The merge is correct for exactly
/// the aggregates ACQUIRE admits — Section 2.6's optimal substructure
/// property is also what makes the evaluation embarrassingly parallel —
/// and the fixed chunking + merge order keeps results deterministic.
///
/// The pool outlives every box query (and is shared process-wide by
/// default), replacing the original spawn-threads-per-EvaluateBox design
/// whose thread-creation cost dwarfed the actual scan on small boxes.
class ParallelEvaluationLayer final : public EvaluationLayer {
 public:
  /// `threads` = 0 shares the process-wide pool (hardware-sized); a
  /// positive count gives this layer its own dedicated pool.
  explicit ParallelEvaluationLayer(const AcqTask* task, size_t threads = 0);

  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Worker count of the pool this layer submits to.
  size_t threads() const { return pool_->num_threads(); }

 private:
  std::unique_ptr<ThreadPool> owned_pool_;  // set when threads > 0
  ThreadPool* pool_;
  bool prepared_ = false;
  NeededMatrix matrix_;
};

}  // namespace acquire

#endif  // ACQUIRE_EXEC_PARALLEL_EVALUATION_H_
