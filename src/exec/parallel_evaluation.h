#ifndef ACQUIRE_EXEC_PARALLEL_EVALUATION_H_
#define ACQUIRE_EXEC_PARALLEL_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "exec/evaluation.h"

namespace acquire {

/// Multi-threaded evaluation layer: Prepare() materializes the per-tuple
/// refinement-distance matrix once (like CachedEvaluationLayer), and every
/// box query is folded in parallel over row partitions whose partial states
/// are merged at the end. The merge is correct for exactly the aggregates
/// ACQUIRE admits — Section 2.6's optimal substructure property is also
/// what makes the evaluation embarrassingly parallel.
class ParallelEvaluationLayer final : public EvaluationLayer {
 public:
  /// `threads` = 0 uses the hardware concurrency (at least 2).
  explicit ParallelEvaluationLayer(const AcqTask* task, size_t threads = 0);

  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  size_t threads() const { return threads_; }

 private:
  size_t threads_;
  bool prepared_ = false;
  std::vector<double> needed_;      // row-major tuple x dim matrix
  std::vector<double> agg_values_;  // per-row aggregate input
};

}  // namespace acquire

#endif  // ACQUIRE_EXEC_PARALLEL_EVALUATION_H_
