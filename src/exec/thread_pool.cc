#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/failpoint.h"

namespace acquire {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::NumChunks(size_t n, size_t min_chunk) const {
  if (n == 0) return 0;
  min_chunk = std::max<size_t>(1, min_chunk);
  const size_t runners = workers_.size() + 1;  // workers + calling thread
  return std::max<size_t>(1, std::min(runners, n / min_chunk));
}

void ThreadPool::ParallelFor(
    size_t n, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& body) {
  const size_t chunks = NumChunks(n, min_chunk);
  if (chunks == 0) return;
  // Injected scheduling fault: degrade to the serial path. Results are
  // unchanged — only the execution strategy differs.
  if (chunks == 1 || ACQ_FAILPOINT("exec.parallel_for")) {
    body(0, 0, n);
    return;
  }

  // Runners (workers plus this thread) claim chunk indices from a shared
  // counter; chunk boundaries are pure functions of (n, chunks).
  struct Job {
    size_t n;
    size_t chunks;
    size_t chunk_size;
    const std::function<void(size_t, size_t, size_t)>* body;
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunks = chunks;
  job->chunk_size = (n + chunks - 1) / chunks;
  job->body = &body;

  auto run_chunks = [](const std::shared_ptr<Job>& j) {
    for (;;) {
      const size_t c = j->next.fetch_add(1);
      if (c >= j->chunks) return;
      const size_t begin = c * j->chunk_size;
      const size_t end = std::min(j->n, begin + j->chunk_size);
      try {
        (*j->body)(c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(j->mu);
        if (!j->error) j->error = std::current_exception();
      }
      if (j->finished.fetch_add(1) + 1 == j->chunks) {
        // Lock so the waiter cannot miss the notify between its predicate
        // check and its wait.
        std::lock_guard<std::mutex> lock(j->mu);
        j->done_cv.notify_all();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    // One helper task per chunk beyond the caller's; surplus tasks find
    // `next` exhausted and return immediately.
    const size_t helpers = std::min(workers_.size(), chunks - 1);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([job, run_chunks] { run_chunks(job); });
    }
  }
  work_cv_.notify_all();

  run_chunks(job);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock,
                      [&] { return job->finished.load() == job->chunks; });
    if (job->error) std::rethrow_exception(job->error);
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  work_cv_.notify_one();
  return future;
}

void ThreadPool::HelpWhileWaiting(std::future<void>& future) {
  for (;;) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      break;
    }
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      task();
    } else {
      // Queue drained: the awaited task is running elsewhere. Bounded wait
      // so a task enqueued meanwhile is picked up promptly.
      future.wait_for(std::chrono::milliseconds(1));
    }
  }
  future.get();
}

ThreadPool& ThreadPool::Shared() {
  // ACQUIRE_POOL_THREADS overrides the hardware-concurrency default —
  // useful for pinning scaling measurements and for capping the pool in
  // oversubscribed CI containers. Clamped to [1, 256]; unset, empty or
  // unparsable values keep the default.
  static ThreadPool* shared = [] {
    size_t threads = 0;
    if (const char* env = std::getenv("ACQUIRE_POOL_THREADS")) {
      const long parsed = std::atol(env);
      if (parsed > 0) {
        threads = static_cast<size_t>(std::min<long>(parsed, 256));
      }
    }
    return new ThreadPool(threads);
  }();
  return *shared;
}

}  // namespace acquire
