#ifndef ACQUIRE_EXEC_MATERIALIZE_H_
#define ACQUIRE_EXEC_MATERIALIZE_H_

#include <vector>

#include "common/result.h"
#include "exec/acq_task.h"

namespace acquire {

/// Materializes the result tuples of a refined query: every base-relation
/// row whose needed-PScore vector is dominated by `pscores`. This is what
/// the user runs after picking one of ACQUIRE's recommendations — the
/// returned table *is* that query's result set (so its aggregate equals the
/// RefinedQuery's reported Aactual).
Result<TablePtr> MaterializeRefinedQuery(const AcqTask& task,
                                         const std::vector<double>& pscores);

/// Convenience overload for the original (unrefined) query.
Result<TablePtr> MaterializeOriginalQuery(const AcqTask& task);

}  // namespace acquire

#endif  // ACQUIRE_EXEC_MATERIALIZE_H_
