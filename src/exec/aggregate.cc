#include "exec/aggregate.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace acquire {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class CountOpsImpl final : public AggregateOps {
 public:
  State Init() const override { return {0.0}; }
  void Add(State* state, double) const override { (*state)[0] += 1.0; }
  void Merge(State* state, const State& other) const override {
    (*state)[0] += other[0];
  }
  double Final(const State& state) const override { return state[0]; }
  const char* name() const override { return "COUNT"; }
};

class SumOpsImpl final : public AggregateOps {
 public:
  State Init() const override { return {0.0}; }
  void Add(State* state, double value) const override { (*state)[0] += value; }
  void Merge(State* state, const State& other) const override {
    (*state)[0] += other[0];
  }
  double Final(const State& state) const override { return state[0]; }
  const char* name() const override { return "SUM"; }
};

class MinOpsImpl final : public AggregateOps {
 public:
  State Init() const override { return {kInf}; }
  void Add(State* state, double value) const override {
    (*state)[0] = std::min((*state)[0], value);
  }
  void Merge(State* state, const State& other) const override {
    (*state)[0] = std::min((*state)[0], other[0]);
  }
  double Final(const State& state) const override { return state[0]; }
  const char* name() const override { return "MIN"; }
};

class MaxOpsImpl final : public AggregateOps {
 public:
  State Init() const override { return {-kInf}; }
  void Add(State* state, double value) const override {
    (*state)[0] = std::max((*state)[0], value);
  }
  void Merge(State* state, const State& other) const override {
    (*state)[0] = std::max((*state)[0], other[0]);
  }
  double Final(const State& state) const override { return state[0]; }
  const char* name() const override { return "MAX"; }
};

// AVG = SUM/COUNT, each of which satisfies the OSP (Section 2.6).
class AvgOpsImpl final : public AggregateOps {
 public:
  State Init() const override { return {0.0, 0.0}; }
  void Add(State* state, double value) const override {
    (*state)[0] += value;
    (*state)[1] += 1.0;
  }
  void Merge(State* state, const State& other) const override {
    (*state)[0] += other[0];
    (*state)[1] += other[1];
  }
  double Final(const State& state) const override {
    return state[1] == 0.0 ? 0.0 : state[0] / state[1];
  }
  const char* name() const override { return "AVG"; }
};

}  // namespace

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kUda:
      return "UDA";
  }
  return "?";
}

const char* ConstraintOpToString(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kEq:
      return "=";
    case ConstraintOp::kGe:
      return ">=";
    case ConstraintOp::kGt:
      return ">";
  }
  return "?";
}

const AggregateOps& CountOps() {
  static const CountOpsImpl* const kOps = new CountOpsImpl();
  return *kOps;
}
const AggregateOps& SumOps() {
  static const SumOpsImpl* const kOps = new SumOpsImpl();
  return *kOps;
}
const AggregateOps& MinOps() {
  static const MinOpsImpl* const kOps = new MinOpsImpl();
  return *kOps;
}
const AggregateOps& MaxOps() {
  static const MaxOpsImpl* const kOps = new MaxOpsImpl();
  return *kOps;
}
const AggregateOps& AvgOps() {
  static const AvgOpsImpl* const kOps = new AvgOpsImpl();
  return *kOps;
}

const AggregateOps& GetBuiltinOps(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return CountOps();
    case AggregateKind::kSum:
      return SumOps();
    case AggregateKind::kMin:
      return MinOps();
    case AggregateKind::kMax:
      return MaxOps();
    case AggregateKind::kAvg:
      return AvgOps();
    case AggregateKind::kUda:
      break;  // resolved via UdaRegistry in AggregateSpec::Bind
  }
  ACQ_CHECK(false) << "kUda has no builtin ops; use UdaRegistry";
  return AvgOps();  // unreachable
}

LambdaAggregateOps::LambdaAggregateOps(
    std::string name, State init, std::function<void(State*, double)> add,
    std::function<void(State*, const State&)> merge,
    std::function<double(const State&)> final_fn)
    : name_(std::move(name)),
      init_(std::move(init)),
      add_(std::move(add)),
      merge_(std::move(merge)),
      final_(std::move(final_fn)) {}

UdaRegistry& UdaRegistry::Instance() {
  static UdaRegistry* const kInstance = new UdaRegistry();
  return *kInstance;
}

Status UdaRegistry::Register(std::unique_ptr<AggregateOps> ops) {
  if (ops == nullptr) return Status::InvalidArgument("null UDA");
  for (const auto& existing : udas_) {
    if (std::string(existing->name()) == ops->name()) {
      return Status::AlreadyExists(std::string("UDA already registered: ") +
                                   ops->name());
    }
  }
  udas_.push_back(std::move(ops));
  return Status::OK();
}

Result<const AggregateOps*> UdaRegistry::Lookup(const std::string& name) const {
  for (const auto& ops : udas_) {
    if (name == ops->name()) return ops.get();
  }
  return Status::NotFound("no such UDA: " + name);
}

Status AggregateSpec::Bind(const Schema& schema) {
  if (kind == AggregateKind::kUda) {
    ACQ_ASSIGN_OR_RETURN(ops, UdaRegistry::Instance().Lookup(uda_name));
  } else {
    ops = &GetBuiltinOps(kind);
  }
  if (kind == AggregateKind::kCount && column.empty()) {
    col_index = -1;
    return Status::OK();
  }
  if (column.empty()) {
    return Status::InvalidArgument(std::string(AggregateKindToString(kind)) +
                                   " requires a column argument");
  }
  ACQ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column));
  if (!IsNumeric(schema.field(idx).type)) {
    return Status::TypeError("aggregate over non-numeric column: " + column);
  }
  col_index = static_cast<int>(idx);
  return Status::OK();
}

std::string AggregateSpec::ToString() const {
  const char* fn =
      kind == AggregateKind::kUda ? uda_name.c_str() : AggregateKindToString(kind);
  return StringFormat("%s(%s)", fn, column.empty() ? "*" : column.c_str());
}

bool Constraint::SatisfiedExactly(double actual) const {
  switch (op) {
    case ConstraintOp::kEq:
      return actual == target;
    case ConstraintOp::kGe:
      return actual >= target;
    case ConstraintOp::kGt:
      return actual > target;
  }
  return false;
}

std::string Constraint::ToString() const {
  return StringFormat("%s %g", ConstraintOpToString(op), target);
}

}  // namespace acquire
