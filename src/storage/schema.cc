#include "storage/schema.h"

#include "common/string_util.h"

namespace acquire {

namespace {
// Splits "table.column" into its parts; bare names yield an empty table.
std::pair<std::string, std::string> SplitQualified(const std::string& name) {
  size_t dot = name.find('.');
  if (dot == std::string::npos) return {"", name};
  return {name.substr(0, dot), name.substr(dot + 1)};
}
}  // namespace

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto [table, column] = SplitQualified(name);
  std::optional<size_t> found;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (f.name != column) continue;
    if (!table.empty() && f.table != table) continue;
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column reference: " + name);
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::NotFound("no such column: " + name);
  }
  return *found;
}

std::optional<size_t> Schema::TryFieldIndex(const std::string& name) const {
  auto r = FieldIndex(name);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields_;
  fields.insert(fields.end(), right.fields_.begin(), right.fields_.end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.QualifiedName() + ":" + DataTypeToString(f.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace acquire
