#ifndef ACQUIRE_STORAGE_WAL_H_
#define ACQUIRE_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"
#include "storage/value.h"

namespace acquire {

/// Crash-consistent durability primitives for the serving path: a per-tenant
/// write-ahead log of APPEND batches ("acq-wal-v1"), a CRC-guarded text log
/// for the server manifest ("acq-manifest-v1"), and checkpointing over the
/// SaveCatalog/LoadCatalog directory format with atomic publication.
///
/// Invariants (the recovery contract, tested by crash_recovery_test):
///   - A record is logged (and synced per policy) BEFORE the batch applies
///     to the in-memory catalog and before the client is acked, so the
///     acked prefix of appends is always recoverable.
///   - Batches are all-or-nothing: a record replays in full or not at all
///     (CRC32C over the payload); a torn tail — the partial record a crash
///     mid-write leaves behind — is truncated at recovery, never fatal.
///   - Replaying base + log reproduces the pre-crash catalog bit-exactly:
///     same rows in the same order, same generation counter, same
///     load_params, hence same task fingerprints and byte-identical cached
///     replies.

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). Software
/// table-driven implementation; `crc` chains calls (pass the previous
/// return value to continue a running checksum).
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

/// When appended WAL records reach the disk platter.
///   kNever  - rely on the OS page cache (fastest; a machine crash can lose
///             recently acked appends, a process crash cannot).
///   kBatch  - fsync every kBatchSyncRecords records and on Sync()/close.
///   kAlways - fsync before every ack (full durability per append).
enum class FsyncPolicy { kNever, kBatch, kAlways };

Result<FsyncPolicy> FsyncPolicyFromString(const std::string& name);
const char* FsyncPolicyToString(FsyncPolicy policy);

/// One logged APPEND batch. `generation` is the catalog generation AFTER
/// the batch applies (appends bump it by exactly 1), which makes replay
/// idempotent against checkpoints: a record whose generation is already
/// covered by the restored snapshot is skipped, so the crash window between
/// checkpoint publication and log trim can never double-apply a batch.
struct WalAppendRecord {
  std::string table;
  uint64_t generation = 0;
  std::vector<std::vector<Value>> rows;
};

/// Serializes a record payload (binary: exact int64/double bit patterns, so
/// replay is bit-identical to the original append).
std::string EncodeWalRecord(const WalAppendRecord& record);
Result<WalAppendRecord> DecodeWalRecord(const std::string& payload);

/// Byte cost of logging `record` (frame header + payload), for disk-quota
/// admission before any byte is written.
uint64_t WalRecordCost(const WalAppendRecord& record);

/// Append-only writer over one tenant's log file. Framing after the
/// "acq-wal-v1\n" header is [u32 payload_len][u32 crc32c(payload)][payload],
/// little-endian. Not thread-safe: the caller serializes appends (the
/// session manager's exclusive data lock does).
class WalWriter {
 public:
  /// Batch-policy sync cadence (records between fsyncs).
  static constexpr uint64_t kBatchSyncRecords = 32;

  /// Opens `path` for appending, writing the header when the file is new or
  /// empty. The caller must have recovered/truncated the file first (see
  /// ReplayWal) so the write position starts on a record boundary.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 FsyncPolicy policy);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and syncs per policy. On any failure — injected
  /// (wal.append.* failpoints) or real — the file is truncated back to its
  /// pre-call length, so a failed append leaves the log byte-identical.
  Status Append(const WalAppendRecord& record);

  /// Forces an fsync of everything appended so far.
  Status Sync();

  /// Trims the log back to the bare header (after a checkpoint made its
  /// records redundant) and syncs.
  Status Reset();

  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }
  uint64_t syncs() const { return syncs_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, FsyncPolicy policy, uint64_t bytes);

  Status SyncLocked();

  const std::string path_;
  int fd_ = -1;
  const FsyncPolicy policy_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
  uint64_t syncs_ = 0;
  uint64_t unsynced_records_ = 0;
};

struct WalReplayStats {
  size_t records = 0;
  size_t rows = 0;
  /// The log ended in a partial/corrupt record (crash mid-write); it was
  /// truncated at the last valid boundary.
  bool torn_tail = false;
  uint64_t valid_bytes = 0;
};

/// Replays every intact record of `path` through `apply` in log order,
/// then truncates the file at the first torn or CRC-corrupt record so the
/// next WalWriter::Open appends on a clean boundary. A missing file is a
/// cold start (OK, zero records). Corruption is NEVER a startup error —
/// only `apply` failures propagate.
Status ReplayWal(const std::string& path,
                 const std::function<Status(const WalAppendRecord&)>& apply,
                 WalReplayStats* stats = nullptr);

/// Writes `contents` to `path` crash-safely: <path>.tmp, fsync, rename.
/// A crash leaves either the old file or the new one, never a torn mix.
Status AtomicWriteFile(const std::string& path, const std::string& contents,
                       bool do_fsync = true);

/// CRC-guarded append-only text log ("acq-manifest-v1"): each line is
/// "<8-hex crc32c> <payload>". Torn-tail tolerant like the WAL. Used for
/// the server-level tenant manifest (ATTACH/DETACH records).
class ManifestLog {
 public:
  /// Replays the intact payload lines of `path` in order and truncates any
  /// torn tail. Missing file = OK, zero lines.
  static Status Replay(const std::string& path,
                       std::vector<std::string>* lines,
                       bool* torn_tail = nullptr);

  /// Opens for appending (header written when new). Call Replay first.
  static Result<std::unique_ptr<ManifestLog>> Open(const std::string& path,
                                                   FsyncPolicy policy);
  ~ManifestLog();

  ManifestLog(const ManifestLog&) = delete;
  ManifestLog& operator=(const ManifestLog&) = delete;

  /// Appends one payload line (must not contain '\n'); synced unless the
  /// policy is kNever (manifest events are rare and precious).
  Status Append(const std::string& line);

  uint64_t records() const { return records_; }

 private:
  ManifestLog(std::string path, int fd, FsyncPolicy policy);

  const std::string path_;
  int fd_ = -1;
  const FsyncPolicy policy_;
  uint64_t records_ = 0;
};

/// Checkpoint identity: what RestoreIdentity needs to make a restored
/// catalog fingerprint-identical to the one that was snapshotted.
struct CheckpointMeta {
  uint64_t generation = 0;
  std::string load_params;
};

/// Writes a full catalog snapshot into `dir`/ckpt-<seq> (SaveCatalog format
/// plus a CRC-stamped CHECKPOINT meta file recording generation and
/// load_params), then atomically publishes it by rewriting `dir`/CURRENT
/// via temp-file+rename and deletes superseded checkpoints. A crash at any
/// point leaves the previously published checkpoint (or none) intact.
Status WriteCheckpoint(const Catalog& catalog, const std::string& dir);

/// Loads the published checkpoint of `dir` into `catalog`: drops every
/// existing table, loads the snapshot, and restores the recorded
/// generation/load_params. NotFound when no checkpoint is published or the
/// published one is corrupt (callers fall back to the base catalog + full
/// WAL — corruption never prevents startup).
Status LoadCheckpoint(const std::string& dir, Catalog* catalog,
                      CheckpointMeta* meta = nullptr);

/// Recursive byte size of a directory tree (0 when missing): WAL +
/// checkpoint disk accounting for per-tenant quotas.
uint64_t DirectoryBytes(const std::string& dir);

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_WAL_H_
