#include "storage/table.h"

#include "common/string_util.h"

namespace acquire {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  std::vector<Field> stamped;
  stamped.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    Field g = f;
    if (g.table.empty()) g.table = name_;
    stamped.push_back(std::move(g));
  }
  schema_ = Schema(std::move(stamped));
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(StringFormat(
        "row has %zu values, table %s has %zu columns", values.size(),
        name_.c_str(), columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    ACQ_RETURN_IF_ERROR(columns_[i].Append(values[i]));
  }
  ++num_rows_;
  stats_dirty_ = true;
  return Status::OK();
}

Status Table::ValidateRows(
    const std::vector<std::vector<Value>>& rows) const {
  // The same rules Column::Append enforces — exact type match, except int64
  // widening into double columns. No mutation: callers (AppendRows here, the
  // WAL admission path in the server) rely on "validated rows cannot fail to
  // apply".
  for (size_t r = 0; r < rows.size(); ++r) {
    const std::vector<Value>& values = rows[r];
    if (values.size() != columns_.size()) {
      return Status::InvalidArgument(StringFormat(
          "row %zu has %zu values, table %s has %zu columns", r,
          values.size(), name_.c_str(), columns_.size()));
    }
    for (size_t i = 0; i < values.size(); ++i) {
      const Value& v = values[i];
      bool ok = false;
      switch (columns_[i].type()) {
        case DataType::kInt64:
          ok = v.is_int64();
          break;
        case DataType::kDouble:
          ok = v.is_double() || v.is_int64();
          break;
        case DataType::kString:
          ok = v.is_string();
          break;
      }
      if (!ok) {
        return Status::TypeError(StringFormat(
            "row %zu column %zu: type mismatch for table %s: %s", r, i,
            name_.c_str(), v.ToString().c_str()));
      }
    }
  }
  return Status::OK();
}

Status Table::AppendRows(const std::vector<std::vector<Value>>& rows) {
  ACQ_RETURN_IF_ERROR(ValidateRows(rows));
  ReserveRows(num_rows_ + rows.size());
  for (const std::vector<Value>& values : rows) {
    for (size_t i = 0; i < values.size(); ++i) {
      // Cannot fail: validated above.
      ACQ_RETURN_IF_ERROR(columns_[i].Append(values[i]));
    }
    ++num_rows_;
  }
  stats_dirty_ = true;
  return Status::OK();
}

void Table::ReserveRows(size_t n) {
  for (auto& c : columns_) c.Reserve(n);
}

Status Table::FinalizeAppend() {
  if (columns_.empty()) return Status::OK();
  size_t n = columns_[0].size();
  for (const auto& c : columns_) {
    if (c.size() != n) {
      return Status::Internal("ragged columns in table " + name_);
    }
  }
  num_rows_ = n;
  stats_dirty_ = true;
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.Get(row));
  return out;
}

const ColumnStats& Table::Stats(size_t col) const {
  if (stats_dirty_) {
    stats_.clear();
    stats_.reserve(columns_.size());
    for (const auto& c : columns_) stats_.push_back(c.ComputeStats());
    stats_dirty_ = false;
  }
  return stats_[col];
}

std::string Table::ToString(size_t limit) const {
  std::string out = name_ + " " + schema_.ToString() + " rows=" +
                    std::to_string(num_rows_) + "\n";
  for (size_t r = 0; r < std::min(limit, num_rows_); ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto& c : columns_) cells.push_back(c.Get(r).ToString());
    out += "  " + Join(cells, ", ") + "\n";
  }
  if (num_rows_ > limit) out += "  ...\n";
  return out;
}

}  // namespace acquire
