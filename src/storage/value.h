#ifndef ACQUIRE_STORAGE_VALUE_H_
#define ACQUIRE_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace acquire {

/// Physical column types supported by the engine. The ACQ algorithms operate
/// on numeric predicates (kInt64 / kDouble); kString columns participate as
/// NOREFINE filters or via categorical ontologies.
enum class DataType { kInt64, kDouble, kString };

const char* DataTypeToString(DataType type);
bool IsNumeric(DataType type);

/// A dynamically typed cell value: null, int64, double, or string.
/// Small, copyable, ordered within numeric types (int64 and double compare
/// numerically against each other).
class Value {
 public:
  /// Null value.
  Value() : repr_(std::monostate{}) {}
  Value(int64_t v) : repr_(v) {}            // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_int64() || is_double(); }

  int64_t int64() const { return std::get<int64_t>(repr_); }
  double dbl() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }

  /// Numeric view of an int64 or double value; error on null/string.
  Result<double> AsDouble() const;

  /// SQL-style rendering ('abc' quoted, NULL for null).
  std::string ToString() const;

  /// Strict equality: numerics compare numerically across int64/double,
  /// strings compare bytewise, null equals only null.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way compare. Null sorts before everything; numeric before string.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_VALUE_H_
