#ifndef ACQUIRE_STORAGE_CATALOG_H_
#define ACQUIRE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace acquire {

/// Name -> table registry; the "database" the SQL binder and evaluation
/// layers resolve against.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;

  /// Fails with AlreadyExists on duplicate names.
  Status AddTable(TablePtr table);

  /// Replaces any existing table of the same name.
  void PutTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_CATALOG_H_
