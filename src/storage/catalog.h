#ifndef ACQUIRE_STORAGE_CATALOG_H_
#define ACQUIRE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace acquire {

/// Name -> table registry; the "database" the SQL binder and evaluation
/// layers resolve against.
///
/// Identity for caching: every mutation (AddTable / PutTable / DropTable /
/// set_load_params) bumps a monotonic generation counter, and loaders record
/// how the data was produced in load_params (e.g. "users:rows=3000,seed=7").
/// Together they fingerprint "which data this catalog holds" without hashing
/// table contents — any change to the catalog invalidates result-cache
/// entries keyed on the old generation.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;

  /// Fails with AlreadyExists on duplicate names.
  Status AddTable(TablePtr table);

  /// Replaces any existing table of the same name.
  void PutTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Appends `rows` to table `name` atomically (Table::AppendRows) and bumps
  /// the generation on success — live ingestion through this entry point
  /// therefore self-invalidates fingerprinted result-cache entries and
  /// negative plan-cache entries keyed on the old generation.
  Status AppendRows(const std::string& name,
                    const std::vector<std::vector<Value>>& rows);

  /// Checks that AppendRows(name, rows) would succeed, without mutating
  /// anything. The durability path validates first, then logs the batch,
  /// then applies — so a rejected batch never reaches the log and a logged
  /// batch never fails to apply.
  Status ValidateAppend(const std::string& name,
                        const std::vector<std::vector<Value>>& rows) const;

  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

  /// Monotonic mutation counter (successful mutations only).
  uint64_t generation() const { return generation_; }

  /// Provenance string set by loaders/generators; appended with ';' when a
  /// catalog is populated by several of them.
  const std::string& load_params() const { return load_params_; }
  void set_load_params(std::string params);
  void AppendLoadParams(const std::string& params);

  /// Restores checkpointed identity without bumping the generation: after a
  /// recovery rebuilds the tables, this stamps the exact generation and
  /// load_params the pre-crash catalog had, so task fingerprints (and cached
  /// replies keyed on them) round-trip bit-identically.
  void RestoreIdentity(uint64_t generation, std::string load_params) {
    generation_ = generation;
    load_params_ = std::move(load_params);
  }

 private:
  std::map<std::string, TablePtr> tables_;
  uint64_t generation_ = 0;
  std::string load_params_;
};

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_CATALOG_H_
