#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "storage/persistence.h"

namespace acquire {

namespace fs = std::filesystem;

namespace {

constexpr char kWalHeader[] = "acq-wal-v1\n";
constexpr size_t kWalHeaderLen = sizeof(kWalHeader) - 1;
constexpr char kManifestHeader[] = "acq-manifest-v1\n";
constexpr size_t kManifestHeaderLen = sizeof(kManifestHeader) - 1;
constexpr char kCheckpointHeader[] = "acq-ckpt-v1";
/// Frame header: u32 payload length + u32 CRC32C of the payload.
constexpr size_t kFrameHeaderLen = 8;
/// Corrupt length fields must not drive allocation: anything claiming a
/// payload beyond this is treated as a torn tail.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

/// Record-type tag inside the payload (room for future record kinds).
constexpr uint8_t kRecordAppend = 1;

/// Value tags.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in.data()) + *pos;
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32(in, pos, &lo) || !GetU32(in, pos, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    ssize_t w = ::write(fd, data + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StringFormat("wal write: %s",
                                          std::strerror(errno)));
    }
    written += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status FsyncFd(int fd) {
  if (::fsync(fd) != 0) {
    return Status::IOError(StringFormat("fsync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

/// Best-effort fsync of a directory entry itself (so renames/creates in it
/// are durable). Some filesystems reject O_RDONLY dir fsync; ignored then.
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// fsyncs every regular file under `dir` (recursive): checkpoint snapshots
/// go through ofstream, which never syncs, and a published-but-unsynced
/// snapshot would defeat the atomic rename.
void SyncTreeFiles(const std::string& dir) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    int fd = ::open(it->path().c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
  SyncDirectory(dir);
}

}  // namespace

// CRC32C, reflected polynomial 0x82F63B78 (Castagnoli). Table built once.
uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  static const uint32_t* const kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<FsyncPolicy> FsyncPolicyFromString(const std::string& name) {
  const std::string lower = ToLower(Trim(name));
  if (lower == "never") return FsyncPolicy::kNever;
  if (lower == "batch") return FsyncPolicy::kBatch;
  if (lower == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument(StringFormat(
      "unknown fsync policy '%s' (never|batch|always)", name.c_str()));
}

const char* FsyncPolicyToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "batch";
}

std::string EncodeWalRecord(const WalAppendRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(kRecordAppend));
  PutU64(&out, record.generation);
  PutU32(&out, static_cast<uint32_t>(record.table.size()));
  out.append(record.table);
  PutU32(&out, static_cast<uint32_t>(record.rows.size()));
  const uint32_t cols =
      record.rows.empty() ? 0 : static_cast<uint32_t>(record.rows[0].size());
  PutU32(&out, cols);
  for (const std::vector<Value>& row : record.rows) {
    for (const Value& v : row) {
      if (v.is_int64()) {
        out.push_back(static_cast<char>(kTagInt64));
        PutU64(&out, static_cast<uint64_t>(v.int64()));
      } else if (v.is_double()) {
        out.push_back(static_cast<char>(kTagDouble));
        uint64_t bits = 0;
        const double d = v.dbl();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(&out, bits);
      } else if (v.is_string()) {
        out.push_back(static_cast<char>(kTagString));
        PutU32(&out, static_cast<uint32_t>(v.str().size()));
        out.append(v.str());
      } else {
        out.push_back(static_cast<char>(kTagNull));
      }
    }
  }
  return out;
}

Result<WalAppendRecord> DecodeWalRecord(const std::string& payload) {
  size_t pos = 0;
  if (payload.empty() || payload[pos] != static_cast<char>(kRecordAppend)) {
    return Status::ParseError("wal record: unknown record type");
  }
  ++pos;
  WalAppendRecord record;
  if (!GetU64(payload, &pos, &record.generation)) {
    return Status::ParseError("wal record: truncated generation");
  }
  uint32_t table_len = 0;
  if (!GetU32(payload, &pos, &table_len) ||
      pos + table_len > payload.size()) {
    return Status::ParseError("wal record: truncated table name");
  }
  record.table = payload.substr(pos, table_len);
  pos += table_len;
  uint32_t nrows = 0, ncols = 0;
  if (!GetU32(payload, &pos, &nrows) || !GetU32(payload, &pos, &ncols)) {
    return Status::ParseError("wal record: truncated shape");
  }
  record.rows.reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      if (pos >= payload.size()) {
        return Status::ParseError("wal record: truncated value");
      }
      const uint8_t tag = static_cast<uint8_t>(payload[pos++]);
      switch (tag) {
        case kTagNull:
          row.emplace_back();
          break;
        case kTagInt64: {
          uint64_t v = 0;
          if (!GetU64(payload, &pos, &v)) {
            return Status::ParseError("wal record: truncated int64");
          }
          row.emplace_back(static_cast<int64_t>(v));
          break;
        }
        case kTagDouble: {
          uint64_t bits = 0;
          if (!GetU64(payload, &pos, &bits)) {
            return Status::ParseError("wal record: truncated double");
          }
          double d = 0.0;
          std::memcpy(&d, &bits, sizeof(d));
          row.emplace_back(d);
          break;
        }
        case kTagString: {
          uint32_t len = 0;
          if (!GetU32(payload, &pos, &len) || pos + len > payload.size()) {
            return Status::ParseError("wal record: truncated string");
          }
          row.emplace_back(payload.substr(pos, len));
          pos += len;
          break;
        }
        default:
          return Status::ParseError("wal record: unknown value tag");
      }
    }
    record.rows.push_back(std::move(row));
  }
  if (pos != payload.size()) {
    return Status::ParseError("wal record: trailing bytes");
  }
  return record;
}

uint64_t WalRecordCost(const WalAppendRecord& record) {
  return kFrameHeaderLen + EncodeWalRecord(record).size();
}

WalWriter::WalWriter(std::string path, int fd, FsyncPolicy policy,
                     uint64_t bytes)
    : path_(std::move(path)), fd_(fd), policy_(policy), bytes_(bytes) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (policy_ != FsyncPolicy::kNever && unsynced_records_ > 0) {
      ::fsync(fd_);
    }
    ::close(fd_);
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   FsyncPolicy policy) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError(StringFormat("cannot open wal %s: %s",
                                        path.c_str(), std::strerror(errno)));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(StringFormat("fstat wal %s: %s", path.c_str(),
                                        std::strerror(errno)));
  }
  uint64_t bytes = static_cast<uint64_t>(st.st_size);
  if (bytes == 0) {
    Status header = WriteAll(fd, kWalHeader, kWalHeaderLen);
    if (!header.ok()) {
      ::close(fd);
      return header;
    }
    bytes = kWalHeaderLen;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, policy, bytes));
}

Status WalWriter::SyncLocked() {
  ACQ_RETURN_IF_ERROR(FsyncFd(fd_));
  ++syncs_;
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (policy_ == FsyncPolicy::kNever) return Status::OK();
  if (unsynced_records_ == 0) return Status::OK();
  return SyncLocked();
}

Status WalWriter::Append(const WalAppendRecord& record) {
  const uint64_t start = bytes_;
  // Any failure below — injected or real — must leave the log byte-identical
  // to the pre-call state: a half-written record mid-file (not at the tail)
  // would desynchronize the framing for every later record.
  auto rollback = [&]() {
    (void)::ftruncate(fd_, static_cast<off_t>(start));
    (void)::lseek(fd_, 0, SEEK_END);
    bytes_ = start;
  };
  if (ACQ_FAILPOINT("wal.append.pre_write")) {
    return Status::IOError("injected wal failure (wal.append.pre_write)");
  }
  const std::string payload = EncodeWalRecord(record);
  std::string frame;
  frame.reserve(kFrameHeaderLen);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload.data(), payload.size()));
  Status written = WriteAll(fd_, frame.data(), frame.size());
  // Crash sites: mid_write armed with crash:<n> terminates here, leaving a
  // frame header without its payload — the torn tail recovery must absorb.
  if (written.ok() && ACQ_FAILPOINT("wal.append.mid_write")) {
    written = Status::IOError("injected wal failure (wal.append.mid_write)");
  }
  if (written.ok()) {
    written = WriteAll(fd_, payload.data(), payload.size());
  }
  if (!written.ok()) {
    rollback();
    return written;
  }
  bytes_ += kFrameHeaderLen + payload.size();
  ++records_;
  ++unsynced_records_;
  Status synced = Status::OK();
  if (policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatch &&
       unsynced_records_ >= kBatchSyncRecords)) {
    synced = SyncLocked();
  }
  if (synced.ok() && ACQ_FAILPOINT("wal.append.pre_ack")) {
    synced = Status::IOError("injected wal failure (wal.append.pre_ack)");
  }
  if (!synced.ok()) {
    // The record may already be durable, but the append is being failed:
    // roll it back so the reply ("rejected") and the log agree. A crash:
    // trigger never reaches this line — that is the point of the site.
    --records_;
    if (unsynced_records_ > 0) --unsynced_records_;
    rollback();
    return synced;
  }
  return Status::OK();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, static_cast<off_t>(kWalHeaderLen)) != 0) {
    return Status::IOError(StringFormat("truncate wal %s: %s", path_.c_str(),
                                        std::strerror(errno)));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::IOError(StringFormat("seek wal %s: %s", path_.c_str(),
                                        std::strerror(errno)));
  }
  bytes_ = kWalHeaderLen;
  records_ = 0;  // records() counts the live log, which is now empty
  unsynced_records_ = 0;
  if (policy_ != FsyncPolicy::kNever) ACQ_RETURN_IF_ERROR(FsyncFd(fd_));
  return Status::OK();
}

Status ReplayWal(const std::string& path,
                 const std::function<Status(const WalAppendRecord&)>& apply,
                 WalReplayStats* stats) {
  WalReplayStats local;
  WalReplayStats* out = stats != nullptr ? stats : &local;
  *out = WalReplayStats{};
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // cold start: nothing logged yet
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  size_t pos = 0;
  bool torn = false;
  if (contents.size() < kWalHeaderLen ||
      contents.compare(0, kWalHeaderLen, kWalHeader) != 0) {
    // Unrecognizable header: the whole file is a torn write; start over.
    torn = !contents.empty();
    pos = 0;
  } else {
    pos = kWalHeaderLen;
    while (pos < contents.size()) {
      size_t cursor = pos;
      uint32_t len = 0, crc = 0;
      if (!GetU32(contents, &cursor, &len) ||
          !GetU32(contents, &cursor, &crc) || len > kMaxPayloadBytes ||
          cursor + len > contents.size()) {
        torn = true;
        break;
      }
      const std::string payload = contents.substr(cursor, len);
      if (Crc32c(payload.data(), payload.size()) != crc) {
        torn = true;
        break;
      }
      Result<WalAppendRecord> record = DecodeWalRecord(payload);
      if (!record.ok()) {
        torn = true;
        break;
      }
      ACQ_RETURN_IF_ERROR(apply(*record));
      ++out->records;
      out->rows += record->rows.size();
      pos = cursor + len;
    }
  }
  out->torn_tail = torn;
  out->valid_bytes = pos;
  if (torn) {
    // Physically drop the tail so the next writer appends on a clean
    // boundary (and so "the log before the crash" equals "the log after
    // recovery" for everything that was acked).
    std::error_code ec;
    fs::resize_file(path, pos == 0 ? 0 : pos, ec);
    if (ec) {
      return Status::IOError(StringFormat("truncate torn wal %s: %s",
                                          path.c_str(),
                                          ec.message().c_str()));
    }
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents,
                       bool do_fsync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(StringFormat("cannot write %s: %s", tmp.c_str(),
                                        std::strerror(errno)));
  }
  Status written = WriteAll(fd, contents.data(), contents.size());
  if (written.ok() && do_fsync) written = FsyncFd(fd);
  ::close(fd);
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IOError(StringFormat(
        "rename %s -> %s: %s", tmp.c_str(), path.c_str(),
        std::strerror(errno)));
    ::unlink(tmp.c_str());
    return status;
  }
  if (do_fsync) SyncDirectory(fs::path(path).parent_path().string());
  return Status::OK();
}

ManifestLog::ManifestLog(std::string path, int fd, FsyncPolicy policy)
    : path_(std::move(path)), fd_(fd), policy_(policy) {}

ManifestLog::~ManifestLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status ManifestLog::Replay(const std::string& path,
                           std::vector<std::string>* lines, bool* torn_tail) {
  lines->clear();
  if (torn_tail != nullptr) *torn_tail = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  size_t pos = 0;
  bool torn = false;
  if (contents.size() < kManifestHeaderLen ||
      contents.compare(0, kManifestHeaderLen, kManifestHeader) != 0) {
    torn = !contents.empty();
  } else {
    pos = kManifestHeaderLen;
    while (pos < contents.size()) {
      const size_t eol = contents.find('\n', pos);
      if (eol == std::string::npos) {
        torn = true;  // partial final line: a crash mid-append
        break;
      }
      const std::string line = contents.substr(pos, eol - pos);
      // "<8-hex crc32c> <payload>"
      unsigned long crc = 0;
      char* end = nullptr;
      if (line.size() < 10 || line[8] != ' ' ||
          (crc = std::strtoul(line.substr(0, 8).c_str(), &end, 16),
       end == nullptr || *end != '\0')) {
        torn = true;
        break;
      }
      const std::string payload = line.substr(9);
      if (Crc32c(payload.data(), payload.size()) !=
          static_cast<uint32_t>(crc)) {
        torn = true;
        break;
      }
      lines->push_back(payload);
      pos = eol + 1;
    }
  }
  if (torn_tail != nullptr) *torn_tail = torn;
  if (torn) {
    std::error_code ec;
    fs::resize_file(path, pos, ec);
    if (ec) {
      return Status::IOError(StringFormat("truncate torn manifest %s: %s",
                                          path.c_str(),
                                          ec.message().c_str()));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<ManifestLog>> ManifestLog::Open(
    const std::string& path, FsyncPolicy policy) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError(StringFormat("cannot open manifest %s: %s",
                                        path.c_str(), std::strerror(errno)));
  }
  struct stat st {};
  if (::fstat(fd, &st) == 0 && st.st_size == 0) {
    Status header = WriteAll(fd, kManifestHeader, kManifestHeaderLen);
    if (!header.ok()) {
      ::close(fd);
      return header;
    }
  }
  return std::unique_ptr<ManifestLog>(new ManifestLog(path, fd, policy));
}

Status ManifestLog::Append(const std::string& line) {
  if (line.find('\n') != std::string::npos) {
    return Status::InvalidArgument("manifest lines must not contain '\\n'");
  }
  if (ACQ_FAILPOINT("wal.manifest.append")) {
    return Status::IOError("injected manifest failure (wal.manifest.append)");
  }
  const std::string framed = StringFormat(
      "%08x %s\n", Crc32c(line.data(), line.size()), line.c_str());
  ACQ_RETURN_IF_ERROR(WriteAll(fd_, framed.data(), framed.size()));
  // Manifest events (ATTACH/DETACH) are rare and structural: sync them
  // eagerly under every policy except an explicit kNever.
  if (policy_ != FsyncPolicy::kNever) ACQ_RETURN_IF_ERROR(FsyncFd(fd_));
  ++records_;
  return Status::OK();
}

namespace {

constexpr char kCurrentFile[] = "CURRENT";
constexpr char kCheckpointMetaFile[] = "CHECKPOINT";

/// The published checkpoint directory name ("ckpt-<seq>"), or empty.
std::string ReadCurrent(const std::string& dir) {
  std::ifstream in(fs::path(dir) / kCurrentFile);
  if (!in) return "";
  std::string name;
  std::getline(in, name);
  name = std::string(Trim(name));
  // Defensive: CURRENT must point inside `dir`.
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find("..") != std::string::npos) {
    return "";
  }
  return name;
}

uint64_t ParseCheckpointSeq(const std::string& name) {
  if (name.rfind("ckpt-", 0) != 0) return 0;
  return std::strtoull(name.c_str() + 5, nullptr, 10);
}

}  // namespace

Status WriteCheckpoint(const Catalog& catalog, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StringFormat("cannot create %s: %s", dir.c_str(),
                                        ec.message().c_str()));
  }
  const std::string current = ReadCurrent(dir);
  const uint64_t seq = ParseCheckpointSeq(current) + 1;
  const std::string name = StringFormat(
      "ckpt-%llu", static_cast<unsigned long long>(seq));
  const fs::path final_dir = fs::path(dir) / name;
  const fs::path tmp_dir = fs::path(dir) / (name + ".tmp");
  fs::remove_all(tmp_dir, ec);
  fs::remove_all(final_dir, ec);  // leftover from an unpublished crash

  ACQ_RETURN_IF_ERROR(SaveCatalog(catalog, tmp_dir.string()));
  std::string body = StringFormat(
      "generation %llu\nload_params %s\n",
      static_cast<unsigned long long>(catalog.generation()),
      catalog.load_params().c_str());
  std::string meta = std::string(kCheckpointHeader) + "\n" + body +
                     StringFormat("crc %08x\n",
                                  Crc32c(body.data(), body.size()));
  ACQ_RETURN_IF_ERROR(
      AtomicWriteFile((tmp_dir / kCheckpointMetaFile).string(), meta));
  SyncTreeFiles(tmp_dir.string());

  // Crash window under test: the snapshot exists but is not published. A
  // restart must recover from the previous checkpoint (or the base) plus
  // the still-untrimmed log.
  if (ACQ_FAILPOINT("wal.checkpoint.mid")) {
    return Status::IOError(
        "injected checkpoint failure (wal.checkpoint.mid)");
  }

  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    return Status::IOError(StringFormat("publish checkpoint %s: %s",
                                        final_dir.c_str(),
                                        ec.message().c_str()));
  }
  SyncDirectory(dir);
  // The atomic commit point: CURRENT flips to the new snapshot.
  ACQ_RETURN_IF_ERROR(AtomicWriteFile(
      (fs::path(dir) / kCurrentFile).string(), name + "\n"));
  // Superseded checkpoints and stale temp dirs are garbage now.
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string entry = it->path().filename().string();
    if (entry == name || entry == kCurrentFile) continue;
    if (entry.rfind("ckpt-", 0) == 0) {
      std::error_code rm;
      fs::remove_all(it->path(), rm);
    }
  }
  return Status::OK();
}

Status LoadCheckpoint(const std::string& dir, Catalog* catalog,
                      CheckpointMeta* meta) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  const std::string current = ReadCurrent(dir);
  if (current.empty()) {
    return Status::NotFound("no checkpoint published in " + dir);
  }
  const fs::path ckpt = fs::path(dir) / current;
  std::ifstream meta_in(ckpt / kCheckpointMetaFile);
  if (!meta_in) {
    return Status::NotFound(StringFormat(
        "checkpoint %s has no meta file", ckpt.c_str()));
  }
  std::string header, gen_line, params_line, crc_line;
  if (!std::getline(meta_in, header) || header != kCheckpointHeader ||
      !std::getline(meta_in, gen_line) ||
      !std::getline(meta_in, params_line) ||
      !std::getline(meta_in, crc_line)) {
    return Status::NotFound(StringFormat(
        "checkpoint %s meta is malformed", ckpt.c_str()));
  }
  const std::string body = gen_line + "\n" + params_line + "\n";
  unsigned long expected_crc = 0;
  if (std::sscanf(crc_line.c_str(), "crc %lx", &expected_crc) != 1 ||
      Crc32c(body.data(), body.size()) !=
          static_cast<uint32_t>(expected_crc)) {
    return Status::NotFound(StringFormat(
        "checkpoint %s meta failed its CRC", ckpt.c_str()));
  }
  unsigned long long generation = 0;
  if (std::sscanf(gen_line.c_str(), "generation %llu", &generation) != 1 ||
      params_line.rfind("load_params ", 0) != 0) {
    return Status::NotFound(StringFormat(
        "checkpoint %s meta is malformed", ckpt.c_str()));
  }
  CheckpointMeta parsed;
  parsed.generation = generation;
  parsed.load_params = params_line.substr(std::strlen("load_params "));

  // Load into a scratch catalog first: a half-readable snapshot must not
  // leave *catalog half-replaced.
  Catalog scratch;
  Status loaded = LoadCatalog(ckpt.string(), &scratch);
  if (!loaded.ok()) {
    return Status::NotFound(StringFormat(
        "checkpoint %s is unreadable: %s", ckpt.c_str(),
        loaded.ToString().c_str()));
  }
  for (const std::string& name : catalog->TableNames()) {
    (void)catalog->DropTable(name);
  }
  for (const std::string& name : scratch.TableNames()) {
    catalog->PutTable(*scratch.GetTable(name));
  }
  catalog->RestoreIdentity(parsed.generation, parsed.load_params);
  if (meta != nullptr) *meta = parsed;
  return Status::OK();
}

uint64_t DirectoryBytes(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code file_ec;
    if (it->is_regular_file(file_ec)) {
      total += static_cast<uint64_t>(it->file_size(file_ec));
    }
  }
  return total;
}

}  // namespace acquire
