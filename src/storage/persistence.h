#ifndef ACQUIRE_STORAGE_PERSISTENCE_H_
#define ACQUIRE_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/result.h"
#include "storage/catalog.h"

namespace acquire {

/// Simple directory-based catalog persistence: one CSV per table plus a
/// `catalog.manifest` (table name, file, schema) so a whole database
/// round-trips. Used by the shell's \savedb / \loaddb and handy for
/// sharing benchmark datasets.
///
/// Manifest line format (tab-separated):
///   <table>\t<csv file>\t<name:type,name:type,...>

/// Writes every table of `catalog` into `directory` (created if missing).
Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// Loads every manifest entry of `directory` into `catalog` (replacing
/// tables of the same name).
Status LoadCatalog(const std::string& directory, Catalog* catalog);

/// Serializes a schema to the manifest's "name:type,..." form.
std::string SchemaToSpec(const Schema& schema);

/// Parses the manifest's schema form (inverse of SchemaToSpec).
Result<Schema> SchemaFromSpec(const std::string& spec);

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_PERSISTENCE_H_
