#ifndef ACQUIRE_STORAGE_COLUMN_H_
#define ACQUIRE_STORAGE_COLUMN_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace acquire {

/// Min/max summary for a numeric column; drives predicate-interval domain
/// bounds (how far a predicate can be refined) and the grid index layout.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  bool valid = false;  // false when the column is empty or non-numeric
};

/// A single typed column stored as a contiguous vector. No null support at
/// the storage level: generators and CSV loading always produce dense data,
/// matching the paper's TPC-H setting.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const;

  /// Appends with a runtime type check (int64 widens into double columns).
  Status Append(const Value& v);

  /// Typed fast-path appends; caller must match the column type.
  void AppendInt64(int64_t v) { std::get<Int64Vec>(data_).push_back(v); }
  void AppendDouble(double v) { std::get<DoubleVec>(data_).push_back(v); }
  void AppendString(std::string v) {
    std::get<StringVec>(data_).push_back(std::move(v));
  }

  Value Get(size_t i) const;

  /// Numeric read; int64 columns widen. Caller must ensure the column is
  /// numeric (checked in debug builds).
  double GetDouble(size_t i) const;

  const std::string& GetString(size_t i) const {
    return std::get<StringVec>(data_)[i];
  }

  const std::vector<int64_t>& int64_data() const {
    return std::get<Int64Vec>(data_);
  }
  const std::vector<double>& double_data() const {
    return std::get<DoubleVec>(data_);
  }
  const std::vector<std::string>& string_data() const {
    return std::get<StringVec>(data_);
  }

  /// O(n) scan; cached by Table.
  ColumnStats ComputeStats() const;

  void Reserve(size_t n);

 private:
  using Int64Vec = std::vector<int64_t>;
  using DoubleVec = std::vector<double>;
  using StringVec = std::vector<std::string>;

  DataType type_;
  std::variant<Int64Vec, DoubleVec, StringVec> data_;
};

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_COLUMN_H_
