#ifndef ACQUIRE_STORAGE_SCHEMA_H_
#define ACQUIRE_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace acquire {

/// A named, typed column slot. `table` records the originating table for
/// columns of joined intermediate results ("" for base tables until attached
/// to a catalog table).
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  std::string table;

  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && table == other.table;
  }
};

/// Ordered collection of fields. Copyable; joined schemas are produced by
/// Concat.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the unique field matching `name`, which may be bare
  /// ("s_acctbal") or qualified ("supplier.s_acctbal"). Errors on a miss or
  /// on an ambiguous bare name.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Like FieldIndex but returns nullopt on a miss; still errors out (via
  /// nullopt) on ambiguity.
  std::optional<size_t> TryFieldIndex(const std::string& name) const;

  /// Schema of `left` fields followed by `right` fields (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_SCHEMA_H_
