#ifndef ACQUIRE_STORAGE_CSV_H_
#define ACQUIRE_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace acquire {

/// Options for CSV import/export. RFC-4180-ish: double-quoted fields may
/// contain the delimiter and doubled quotes.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Parses `path` into a table named `table_name` using `schema` for types.
/// When `options.has_header` is set, the header row is validated against the
/// schema's field names.
Result<TablePtr> ReadCsv(const std::string& path, const std::string& table_name,
                         const Schema& schema, const CsvOptions& options = {});

/// Writes `table` (header + rows) to `path`.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Parses one CSV record into raw fields (exposed for tests).
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delimiter);

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_CSV_H_
