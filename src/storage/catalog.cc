#include "storage/catalog.h"

namespace acquire {

Status Catalog::AddTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  auto [it, inserted] = tables_.emplace(table->name(), table);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table already exists: " + table->name());
  }
  ++generation_;
  return Status::OK();
}

void Catalog::PutTable(TablePtr table) {
  tables_[table->name()] = std::move(table);
  ++generation_;
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  ++generation_;
  return Status::OK();
}

Status Catalog::AppendRows(const std::string& name,
                           const std::vector<std::vector<Value>>& rows) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  if (rows.empty()) return Status::OK();  // nothing changed, no new identity
  ACQ_RETURN_IF_ERROR(it->second->AppendRows(rows));
  ++generation_;
  return Status::OK();
}

Status Catalog::ValidateAppend(
    const std::string& name,
    const std::vector<std::vector<Value>>& rows) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second->ValidateRows(rows);
}

void Catalog::set_load_params(std::string params) {
  load_params_ = std::move(params);
  ++generation_;
}

void Catalog::AppendLoadParams(const std::string& params) {
  if (!load_params_.empty()) load_params_ += ';';
  load_params_ += params;
  ++generation_;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace acquire
