#include "storage/value.h"

#include "common/string_util.h"

namespace acquire {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

Result<double> Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  if (is_double()) return dbl();
  return Status::TypeError("value is not numeric: " + ToString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return StringFormat("%g", dbl());
  return "'" + str() + "'";
}

bool Value::operator==(const Value& other) const {
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both null
  if (ra == 1) {
    // Compare int64 pairs exactly; mix of int64/double via double.
    if (is_int64() && other.is_int64()) {
      if (int64() < other.int64()) return -1;
      if (int64() > other.int64()) return 1;
      return 0;
    }
    double a = is_int64() ? static_cast<double>(int64()) : dbl();
    double b = other.is_int64() ? static_cast<double>(other.int64()) : other.dbl();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  return str().compare(other.str()) < 0 ? -1 : (str() == other.str() ? 0 : 1);
}

}  // namespace acquire
