#include "storage/persistence.h"

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "storage/csv.h"

namespace acquire {

namespace fs = std::filesystem;

std::string SchemaToSpec(const Schema& schema) {
  std::vector<std::string> parts;
  parts.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    const char* type = "string";
    switch (f.type) {
      case DataType::kInt64:
        type = "int64";
        break;
      case DataType::kDouble:
        type = "double";
        break;
      case DataType::kString:
        type = "string";
        break;
    }
    parts.push_back(f.name + ":" + type);
  }
  return Join(parts, ",");
}

Result<Schema> SchemaFromSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : Split(spec, ',')) {
    std::vector<std::string> kv = Split(part, ':');
    if (kv.size() != 2) {
      return Status::ParseError("bad schema field: " + part);
    }
    std::string name(Trim(kv[0]));
    std::string type = ToLower(Trim(kv[1]));
    DataType dt;
    if (type == "int64" || type == "int") {
      dt = DataType::kInt64;
    } else if (type == "double") {
      dt = DataType::kDouble;
    } else if (type == "string") {
      dt = DataType::kString;
    } else {
      return Status::ParseError("unknown type in schema spec: " + type);
    }
    fields.push_back({name, dt, ""});
  }
  if (fields.empty()) return Status::ParseError("empty schema spec");
  return Schema(std::move(fields));
}

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + directory + ": " +
                           ec.message());
  }
  std::ofstream manifest(fs::path(directory) / "catalog.manifest");
  if (!manifest) {
    return Status::IOError("cannot write manifest in " + directory);
  }
  for (const std::string& name : catalog.TableNames()) {
    ACQ_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(name));
    std::string file = name + ".csv";
    ACQ_RETURN_IF_ERROR(
        WriteCsv(*table, (fs::path(directory) / file).string()));
    // Persist bare column names; the table qualifier is re-stamped on load.
    std::vector<Field> bare;
    for (const Field& f : table->schema().fields()) {
      bare.push_back({f.name, f.type, ""});
    }
    manifest << name << '\t' << file << '\t'
             << SchemaToSpec(Schema(std::move(bare))) << '\n';
  }
  if (!manifest) return Status::IOError("manifest write failed");
  return Status::OK();
}

Status LoadCatalog(const std::string& directory, Catalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  std::ifstream manifest(fs::path(directory) / "catalog.manifest");
  if (!manifest) {
    return Status::IOError("no catalog.manifest in " + directory);
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> parts = Split(line, '\t');
    if (parts.size() != 3) {
      return Status::ParseError(StringFormat(
          "manifest line %zu: expected 3 tab-separated fields", line_no));
    }
    ACQ_ASSIGN_OR_RETURN(Schema schema, SchemaFromSpec(parts[2]));
    ACQ_ASSIGN_OR_RETURN(
        TablePtr table,
        ReadCsv((fs::path(directory) / parts[1]).string(), parts[0], schema));
    catalog->PutTable(std::move(table));
  }
  catalog->AppendLoadParams("loaddb:" + directory);
  return Status::OK();
}

}  // namespace acquire
