#ifndef ACQUIRE_STORAGE_TABLE_H_
#define ACQUIRE_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace acquire {

/// Row-addressable columnar table. Intermediate join results are also
/// Tables, so every executor consumes and produces the same shape.
class Table {
 public:
  /// Creates an empty table; field `table` qualifiers are stamped with
  /// `name` when they are empty.
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) {
    stats_dirty_ = true;
    return columns_[i];
  }

  /// Appends one row; value count and types must match the schema.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends a batch of rows atomically: every row is type-checked against
  /// the schema BEFORE any column is touched, so a bad row leaves the table
  /// unchanged instead of half-appended (the live-ingestion path depends on
  /// the all-or-nothing contract).
  Status AppendRows(const std::vector<std::vector<Value>>& rows);

  /// The validation half of AppendRows, without mutation. A batch that
  /// passes cannot fail to apply — the write-ahead-log path validates, then
  /// logs, then applies, and depends on the apply being infallible.
  Status ValidateRows(const std::vector<std::vector<Value>>& rows) const;

  /// Bulk variant of AppendRow used by generators: appends typed values with
  /// per-column fast paths. All vectors must have schema-matching types.
  void ReserveRows(size_t n);

  /// Caller responsibility after direct mutable_column() appends: keeps the
  /// row count in sync (all columns must have equal size).
  Status FinalizeAppend();

  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Full row materialization (mostly for tests and examples).
  std::vector<Value> GetRow(size_t row) const;

  /// Cached per-column stats; recomputed after mutation.
  const ColumnStats& Stats(size_t col) const;

  /// Pretty-prints up to `limit` rows.
  std::string ToString(size_t limit = 10) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  mutable std::vector<ColumnStats> stats_;
  mutable bool stats_dirty_ = true;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace acquire

#endif  // ACQUIRE_STORAGE_TABLE_H_
