#include "storage/column.h"

#include <algorithm>
#include <cassert>

namespace acquire {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kInt64:
      data_ = Int64Vec{};
      break;
    case DataType::kDouble:
      data_ = DoubleVec{};
      break;
    case DataType::kString:
      data_ = StringVec{};
      break;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

Status Column::Append(const Value& v) {
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) {
        return Status::TypeError("expected INT64, got " + v.ToString());
      }
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.dbl());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64()));
      } else {
        return Status::TypeError("expected DOUBLE, got " + v.ToString());
      }
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) {
        return Status::TypeError("expected STRING, got " + v.ToString());
      }
      AppendString(v.str());
      return Status::OK();
  }
  return Status::Internal("unreachable column type");
}

Value Column::Get(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(int64_data()[i]);
    case DataType::kDouble:
      return Value(double_data()[i]);
    case DataType::kString:
      return Value(string_data()[i]);
  }
  return Value::Null();
}

double Column::GetDouble(size_t i) const {
  assert(IsNumeric(type_));
  if (type_ == DataType::kInt64) return static_cast<double>(int64_data()[i]);
  return double_data()[i];
}

ColumnStats Column::ComputeStats() const {
  ColumnStats stats;
  if (!IsNumeric(type_) || size() == 0) return stats;
  double mn = GetDouble(0);
  double mx = mn;
  for (size_t i = 1, n = size(); i < n; ++i) {
    double v = GetDouble(i);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  stats.min = mn;
  stats.max = mx;
  stats.valid = true;
  return stats;
}

void Column::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

}  // namespace acquire
