#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace acquire {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line_in,
                                              char delimiter) {
  // Tolerate CRLF files: std::getline keeps the '\r'.
  std::string line = line_in;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("unexpected quote mid-field: " + line);
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote: " + line);
  fields.push_back(std::move(current));
  return fields;
}

namespace {

Result<Value> ParseField(const std::string& field, DataType type) {
  switch (type) {
    case DataType::kInt64: {
      ACQ_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return Value(v);
    }
    case DataType::kDouble: {
      ACQ_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value(v);
    }
    case DataType::kString:
      return Value(field);
  }
  return Status::Internal("unreachable data type");
}

std::string QuoteField(const std::string& field, char delimiter) {
  bool needs_quoting = field.find(delimiter) != std::string::npos ||
                       field.find('"') != std::string::npos ||
                       field.find('\n') != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<TablePtr> ReadCsv(const std::string& path, const std::string& table_name,
                         const Schema& schema, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  auto table = std::make_shared<Table>(table_name, schema);
  std::string line;
  size_t line_no = 0;

  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::ParseError("missing header in " + path);
    }
    ++line_no;
    ACQ_ASSIGN_OR_RETURN(std::vector<std::string> header,
                         ParseCsvLine(line, options.delimiter));
    if (header.size() != schema.num_fields()) {
      return Status::ParseError(StringFormat(
          "%s: header has %zu fields, schema expects %zu", path.c_str(),
          header.size(), schema.num_fields()));
    }
    for (size_t i = 0; i < header.size(); ++i) {
      if (Trim(header[i]) != schema.field(i).name) {
        return Status::ParseError(StringFormat(
            "%s: header field %zu is '%s', schema expects '%s'", path.c_str(),
            i, header[i].c_str(), schema.field(i).name.c_str()));
      }
    }
  }

  std::vector<Value> row(schema.num_fields());
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    ACQ_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseCsvLine(line, options.delimiter));
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError(StringFormat(
          "%s:%zu: %zu fields, expected %zu", path.c_str(), line_no,
          fields.size(), schema.num_fields()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      auto v = ParseField(fields[i], schema.field(i).type);
      if (!v.ok()) {
        return Status::ParseError(StringFormat("%s:%zu: %s", path.c_str(),
                                               line_no,
                                               v.status().message().c_str()));
      }
      row[i] = std::move(v).value();
    }
    ACQ_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return table;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  if (options.has_header) {
    std::vector<std::string> names;
    names.reserve(table.schema().num_fields());
    for (const Field& f : table.schema().fields()) names.push_back(f.name);
    out << Join(names, std::string(1, options.delimiter)) << "\n";
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out << options.delimiter;
      const Column& col = table.column(c);
      switch (col.type()) {
        case DataType::kInt64:
          out << col.int64_data()[r];
          break;
        case DataType::kDouble:
          out << StringFormat("%.17g", col.double_data()[r]);
          break;
        case DataType::kString:
          out << QuoteField(col.string_data()[r], options.delimiter);
          break;
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace acquire
